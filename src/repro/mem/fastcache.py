"""Array-backed set-associative cache — the "fast" simulation engine.

:class:`FastCache` is a drop-in replacement for :class:`repro.mem.cache.Cache`
with true-LRU replacement, designed so the trace-driven hot path (the
embedding hierarchy walk) can be vectorized.  State lives in flat numpy
planes instead of one Python :class:`~repro.mem.policies.SetPolicy` object
per set:

``_tags``
    ``num_sets × ways`` int64 matrix of resident tags (-1 = empty way).
``_stamp``
    ``num_sets × ways`` int64 matrix of last-touch ticks from a global
    monotone counter; the LRU victim of a set is the way with the smallest
    stamp.  This reproduces :class:`~repro.mem.policies.LRUPolicy` exactly:
    both order a set's ways by last touch (lookup hit or insert).
``_pending``
    ``num_sets × ways`` boolean plane marking lines filled by prefetch and
    not yet demanded (the reference keeps a ``line -> True`` dict; a
    resident-slot plane is equivalent because pending lines are always
    resident).
``_where``
    A ``line -> way`` dict sidecar.  Batch calls keep the way values
    exact; scalar calls use it purely as an O(1) membership probe (way
    values are reassigned when the scalar row cache is flushed back).

Scalar calls are stat-for-stat and eviction-for-eviction equivalent to
``Cache(policy="lru")`` (enforced by the differential tests in
``tests/test_mem_fastcache.py``).  The batch calls (`lookup_batch`,
`fill_batch`) require the caller to guarantee that no two lines of a batch
map to the same set — :meth:`repro.mem.hierarchy.MemoryHierarchy.access_lines`
splits streams into conflict-free runs before calling them.

Only ``policy="lru"`` is supported; construction with any other policy
raises, and :func:`repro.mem.hierarchy.make_cache` falls back to the
reference implementation for those.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from ..units import CACHE_LINE_BYTES
from .stats import CacheStats

__all__ = ["FastCache"]


class FastCache:
    """Array-backed set-associative LRU cache level.

    Constructor signature matches :class:`~repro.mem.cache.Cache`; ``seed``
    is accepted (and ignored — LRU is deterministic) so the two classes are
    interchangeable at every call site.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        if size_bytes <= 0:
            raise ConfigError(f"cache size must be positive, got {size_bytes}")
        if policy.lower() != "lru":
            raise ConfigError(
                f"FastCache supports only the 'lru' policy, got {policy!r}; "
                "use the reference Cache for other policies"
            )
        lines = size_bytes // CACHE_LINE_BYTES
        if lines % ways:
            raise ConfigError(
                f"{name}: {size_bytes} bytes is not divisible into {ways}-way sets"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.num_sets = lines // ways
        self.policy_name = "lru"
        self.stats = CacheStats()
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._pending = np.zeros((self.num_sets, ways), dtype=bool)
        self._where: Dict[int, int] = {}
        self._tick = 0
        # Sticky "a prefetch fill ever happened" flag; while False the
        # batch paths skip all pending-plane reads (demand-only runs never
        # pay for prefetch bookkeeping).
        self._has_pending = False
        # Scalar-path row cache: set index -> LRU-first tag list, exactly
        # the reference :class:`~repro.mem.policies.LRUPolicy` layout.
        # Scalar access/fill touch one set at a time, and per-element numpy
        # indexing costs ~10x a C list op, so scalar calls operate on
        # lazily materialized order lists (plus ``_pend_lines``, the
        # reference-style ``line -> True`` pending dict for those sets);
        # the numpy planes for materialized sets are stale until a batch
        # entry point (or flush) reconciles them via :meth:`_flush_rows`.
        # A hierarchy instance in practice runs either all-scalar or
        # all-batch, so the write-back happens at most once per run.
        self._rows: Dict[int, List[int]] = {}
        self._pend_lines: Dict[int, bool] = {}
        # True while no batch call has ever written the planes: every set
        # not in _rows is known-empty, so scalar materialization skips the
        # numpy row reads.  Scalar-only runs never pay for the planes.
        self._planes_empty = True

    # -- geometry ---------------------------------------------------------

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    def set_index(self, line: int) -> int:
        """Set that line ``line`` maps to."""
        return line % self.num_sets

    def tag_of(self, line: int) -> int:
        """Tag of line ``line`` within its set."""
        return line // self.num_sets

    # -- scalar accesses (reference-equivalent) ---------------------------

    def _row(self, s: int) -> List[int]:
        """LRU-first tag list of set ``s``, materialized on first touch.

        Exactly the reference policy's layout, so scalar recency updates
        are the same C list operations (``remove``/``append``) the
        reference pays.  Pending bits for the set move into the line-keyed
        ``_pend_lines`` dict (the reference's representation).
        """
        if self._planes_empty:
            order: List[int] = []
            self._rows[s] = order
            return order
        tags_l = self._tags[s].tolist()
        order = [
            t
            for _, t in sorted(
                (st, t)
                for st, t in zip(self._stamp[s].tolist(), tags_l)
                if t != -1
            )
        ]
        self._rows[s] = order
        if self._has_pending:
            pend_row = self._pending[s]
            if pend_row.any():
                ns = self.num_sets
                for w in np.nonzero(pend_row)[0].tolist():
                    self._pend_lines[tags_l[w] * ns + s] = True
        return order

    def _flush_rows(self) -> None:
        """Reconcile materialized order lists back into the numpy planes.

        Way positions within a set are internal state: batch behavior
        depends only on membership, per-set recency order, and per-line
        pending flags.  Residents are therefore laid back at their
        order-list position with stamps ``1..k``; the tick counter is
        bumped to at least ``ways`` so every future stamp stays newer.
        """
        if not self._rows:
            return
        ns = self.num_sets
        ways = self.ways
        tags, stamp, pending = self._tags, self._stamp, self._pending
        where = self._where
        pend_lines = self._pend_lines
        has_pend = self._has_pending
        for s, order in self._rows.items():
            k = len(order)
            tags[s] = order + [-1] * (ways - k)
            stamp[s] = list(range(1, k + 1)) + [0] * (ways - k)
            if has_pend:
                pending[s] = [
                    w < k and (order[w] * ns + s) in pend_lines
                    for w in range(ways)
                ]
            for w, t in enumerate(order):
                where[t * ns + s] = w
        if self._tick < ways:
            self._tick = ways
        self._rows.clear()
        pend_lines.clear()

    def access(self, line: int, is_prefetch: bool = False) -> bool:
        """Look up ``line``; return True on hit.  Mirrors ``Cache.access``."""
        stats = self.stats
        if line not in self._where:
            if not is_prefetch:
                stats.demand_misses += 1
            return False
        order = self._rows.get(s := line % self.num_sets)
        if order is None:
            order = self._row(s)
        tag = line // self.num_sets
        order.remove(tag)
        order.append(tag)
        if is_prefetch:
            stats.prefetch_hits += 1
        else:
            stats.demand_hits += 1
            if self._has_pending and self._pend_lines.pop(line, None):
                stats.prefetch_useful += 1
        return True

    def contains(self, line: int) -> bool:
        """Residency probe without recency or stats side effects."""
        return line in self._where

    def fill(self, line: int, from_prefetch: bool = False) -> Optional[int]:
        """Install ``line``; return the evicted line number, if any."""
        ns = self.num_sets
        order = self._rows.get(s := line % ns)
        if order is None:
            order = self._row(s)
        tag = line // ns
        where = self._where
        evicted_line: Optional[int] = None
        if line in where:
            order.remove(tag)
            order.append(tag)
        else:
            if len(order) >= self.ways:
                evicted_line = order.pop(0) * ns + s
                del where[evicted_line]
                self.stats.evictions += 1
                if self._has_pending and self._pend_lines.pop(evicted_line, None):
                    self.stats.prefetch_evicted_unused += 1
            order.append(tag)
            # Way assignment is deferred to _flush_rows; scalar calls only
            # ever use _where as a membership test.
            where[line] = -1
        if from_prefetch:
            self.stats.prefetch_fills += 1
            self._pend_lines[line] = True
            self._has_pending = True
        return evicted_line

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; return whether it was resident."""
        if line not in self._where:
            return False
        order = self._rows.get(s := line % self.num_sets)
        if order is None:
            order = self._row(s)
        del self._where[line]
        order.remove(line // self.num_sets)
        if self._has_pending:
            self._pend_lines.pop(line, None)
        return True

    # -- batch accesses ----------------------------------------------------
    #
    # Precondition for both: the lines of one batch map to pairwise-distinct
    # sets.  Under that precondition the batch is exactly equivalent to the
    # scalar calls applied in index order (per-set event order — the only
    # thing LRU state depends on — is preserved, because each set is touched
    # at most once per batch).

    def lookup_batch(self, lines: np.ndarray, is_prefetch: bool = False) -> np.ndarray:
        """Vectorized ``access`` over conflict-free ``lines``; returns hits."""
        self._flush_rows()
        self._planes_empty = False
        n = lines.size
        s = lines % self.num_sets
        match = self._tags[s] == (lines // self.num_sets)[:, None]
        hit = match.any(axis=1)
        hs = s[hit]
        k = hs.size
        stats = self.stats
        if k:
            hw = match[hit].argmax(axis=1)
            self._stamp[hs, hw] = np.arange(
                self._tick + 1, self._tick + 1 + k, dtype=np.int64
            )
            self._tick += k
            if is_prefetch:
                stats.prefetch_hits += k
            else:
                stats.demand_hits += k
                if self._has_pending:
                    pend = self._pending[hs, hw]
                    n_useful = int(np.count_nonzero(pend))
                    if n_useful:
                        stats.prefetch_useful += n_useful
                        self._pending[hs[pend], hw[pend]] = False
        if not is_prefetch:
            stats.demand_misses += n - k
        return hit

    def demand_wave(self, lines: np.ndarray) -> np.ndarray:
        """Fused demand lookup + miss fill for one conflict-free wave.

        Equivalent to, for each line in order: ``access(line)`` followed by
        ``fill(line)`` when the access missed — the per-line sequence the
        hierarchy's demand walk performs at every level.  Fusing the two
        halves the numpy dispatch count on the hot path.  Returns the hit
        mask.
        """
        self._flush_rows()
        self._planes_empty = False
        ns = self.num_sets
        n = lines.size
        t, s = np.divmod(lines, ns)
        rows = self._tags[s]
        match = rows == t[:, None]
        way = match.argmax(axis=1)
        hit = match.any(axis=1)
        stats = self.stats
        nhit = int(np.count_nonzero(hit))
        stats.demand_hits += nhit
        stats.demand_misses += n - nhit
        pending = self._has_pending
        if nhit and pending:
            hs, hw = s[hit], way[hit]
            pend = self._pending[hs, hw]
            n_useful = int(np.count_nonzero(pend))
            if n_useful:
                stats.prefetch_useful += n_useful
                self._pending[hs[pend], hw[pend]] = False
        if nhit < n:
            miss = ~hit
            ms, mt = s[miss], t[miss]
            freemask = rows[miss] == -1
            has_free = freemask.any(axis=1)
            fway = np.where(
                has_free, freemask.argmax(axis=1), self._stamp[ms].argmin(axis=1)
            )
            way[miss] = fway
            full = ~has_free
            n_evict = int(np.count_nonzero(full))
            where = self._where
            if n_evict:
                vs, vw = ms[full], fway[full]
                stats.evictions += n_evict
                if pending:
                    ev_pend = self._pending[vs, vw]
                    n_unused = int(np.count_nonzero(ev_pend))
                    if n_unused:
                        stats.prefetch_evicted_unused += n_unused
                for ev in (self._tags[vs, vw] * ns + vs).tolist():
                    del where[ev]
            self._tags[ms, fway] = mt
            if pending:
                self._pending[ms, fway] = False
            for ln, w in zip(lines[miss].tolist(), fway.tolist()):
                where[ln] = w
        self._stamp[s, way] = np.arange(
            self._tick + 1, self._tick + 1 + n, dtype=np.int64
        )
        self._tick += n
        return hit

    def fill_batch(self, lines: np.ndarray, from_prefetch: bool = False) -> None:
        """Vectorized ``fill`` over conflict-free ``lines``.

        Unlike scalar :meth:`fill`, evicted line numbers are not returned
        (no caller of the hierarchy walk consumes them); eviction statistics
        are recorded identically.
        """
        self._flush_rows()
        self._planes_empty = False
        n = lines.size
        if not n:
            return
        s = lines % self.num_sets
        tags = lines // self.num_sets
        rows = self._tags[s]
        match = rows == tags[:, None]
        resident = match.any(axis=1)
        ways = match.argmax(axis=1)
        new_idx = np.nonzero(~resident)[0]
        if new_idx.size:
            nrows = rows[new_idx]
            freemask = nrows == -1
            has_free = freemask.any(axis=1)
            ways[new_idx[has_free]] = freemask[has_free].argmax(axis=1)
            vict_idx = new_idx[~has_free]
            if vict_idx.size:
                vs = s[vict_idx]
                vw = self._stamp[vs].argmin(axis=1)
                ways[vict_idx] = vw
                ev_lines = self._tags[vs, vw] * self.num_sets + vs
                self.stats.evictions += vict_idx.size
                if self._has_pending:
                    self.stats.prefetch_evicted_unused += int(
                        np.count_nonzero(self._pending[vs, vw])
                    )
                for ev in ev_lines.tolist():
                    del self._where[ev]
            ns, nw = s[new_idx], ways[new_idx]
            self._tags[ns, nw] = tags[new_idx]
            if self._has_pending:
                self._pending[ns, nw] = False
            for ln, w in zip(lines[new_idx].tolist(), ways[new_idx].tolist()):
                self._where[ln] = w
        self._stamp[s, ways] = np.arange(
            self._tick + 1, self._tick + 1 + n, dtype=np.int64
        )
        self._tick += n
        if from_prefetch:
            self.stats.prefetch_fills += n
            self._pending[s, ways] = True
            self._has_pending = True

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Empty the cache, keeping statistics."""
        self._rows.clear()
        self._pend_lines.clear()
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._pending.fill(False)
        self._where.clear()
        self._tick = 0
        self._has_pending = False
        self._planes_empty = True

    def reset_stats(self) -> None:
        """Zero statistics, keeping contents (for warmup/measure splits)."""
        self.stats.reset()

    def publish_metrics(self, registry, **labels: str) -> None:
        """Accumulate this level's counters into an obs metrics registry."""
        self.stats.publish(registry, cache=self.name, **labels)

    def occupancy(self) -> int:
        """Number of currently resident lines."""
        return len(self._where)

    def resident_lines(self) -> List[int]:
        """Sorted snapshot of resident line numbers (test/debug aid)."""
        return sorted(self._where)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FastCache({self.name}, {self.size_bytes}B, {self.ways}-way, "
            f"{self.num_sets} sets, lru)"
        )
