"""Simulation-wide configuration.

:class:`SimConfig` bundles the handful of knobs that cut across subsystems
(random seed, default batch size, scale factor for shrinking paper-scale
models to tractable simulation sizes).  Everything subsystem-specific lives
next to that subsystem (``repro.cpu.platform`` for CPU specs,
``repro.model.configs`` for model architectures).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .errors import ConfigError

#: Batch size used throughout the paper's evaluation (Section 5).
PAPER_BATCH_SIZE = 64

#: Number of batches the paper averages latency over (Section 6).
PAPER_NUM_BATCHES = 120


@dataclass(frozen=True)
class SimConfig:
    """Global simulation knobs.

    Parameters
    ----------
    seed:
        Seed for every random stream derived from this config.
    batch_size:
        Samples per inference batch (the paper uses 64).
    num_batches:
        Batches per measurement (the paper averages over 120).
    scale:
        Linear shrink factor applied to model table counts / rows / lookups
        when building *simulation-scale* workloads.  ``1.0`` is paper scale;
        the default ``0.05`` keeps trace-driven experiments in the seconds
        range.  Analytic paths (reuse-distance model, breakdown) always run
        at paper scale regardless.
    engine:
        Simulation engine: ``"fast"`` (array-backed caches + vectorized
        hierarchy walk, the default) or ``"reference"`` (per-set Python
        objects, the correctness oracle).  Both produce identical results;
        see ``docs/modeling.md``.
    mode:
        Hit-rate modeling mode for the analytic paths: ``"sim"`` (default)
        replays a synthesized index stream through the exact stack-distance
        counter; ``"analytic"`` predicts the same per-level hit rates in
        closed form from the calibrated Zipf law (Che's approximation, see
        ``repro.analysis.analytic``) without synthesizing a trace.  The two
        agree within the noise-floored bounds pinned by
        ``tests/test_analysis_analytic.py`` but are *not* bit-identical —
        hence a separate knob from ``engine``.
    """

    seed: int = 0xD1_12_31
    batch_size: int = PAPER_BATCH_SIZE
    num_batches: int = 8
    scale: float = 0.05
    engine: str = "fast"
    mode: str = "sim"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError(f"batch_size must be positive, got {self.batch_size}")
        if self.num_batches <= 0:
            raise ConfigError(f"num_batches must be positive, got {self.num_batches}")
        if not 0.0 < self.scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {self.scale}")
        if self.engine not in ("fast", "reference"):
            raise ConfigError(
                f"engine must be 'fast' or 'reference', got {self.engine!r}"
            )
        if self.mode not in ("sim", "analytic"):
            raise ConfigError(
                f"mode must be 'sim' or 'analytic', got {self.mode!r}"
            )

    def rng(self, stream: str = "default") -> np.random.Generator:
        """Return a deterministic generator for a named random stream.

        Distinct ``stream`` names yield statistically independent streams
        while remaining reproducible for a fixed :attr:`seed`.
        """
        ss = np.random.SeedSequence([self.seed, _stream_key(stream)])
        return np.random.default_rng(ss)

    def with_(self, **changes: object) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


def _stream_key(stream: str) -> int:
    """Stable 63-bit key for a stream name (Python's hash() is salted)."""
    key = 0
    for ch in stream:
        key = (key * 131 + ord(ch)) % (2**63 - 1)
    return key


DEFAULT_CONFIG = SimConfig()


@dataclass
class ExperimentScale:
    """Per-experiment overrides of the default simulation scale.

    Experiments that simulate every cache-line access use smaller traces
    than experiments that only run the analytic reuse model.  This class
    records the choice so it can be surfaced in reports.
    """

    scale: float = 0.05
    num_batches: int = 8
    batch_size: int = PAPER_BATCH_SIZE
    notes: str = ""

    def apply(self, config: SimConfig) -> SimConfig:
        """Produce a :class:`SimConfig` with this experiment's scale."""
        return config.with_(
            scale=self.scale,
            num_batches=self.num_batches,
            batch_size=self.batch_size,
        )
