"""Micro-op cost model of the embedding kernel (Algorithm 1).

Per pooled lookup, the AVX-512 kernel executes, for each 64-byte block of
the embedding row:

* one vector load of the row block (``vec.ld row_block``),
* an accumulate and bookkeeping (``vec.add``, pointer arithmetic) —
  modeled as :attr:`KernelCostModel.uops_per_line` non-memory micro-ops;

plus per-lookup overhead (index fetch, address computation, loop control).
With dim=128 (8 lines) the default model charges ``6 + 8 * (4 + 1) = 46``
instructions per lookup, consistent with the paper's observation that a
prefetch distance of 4 lookups corresponds to roughly 200 instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["KernelCostModel"]


@dataclass(frozen=True)
class KernelCostModel:
    """Instruction costs of one pooled embedding lookup."""

    #: Non-memory uops per cache-line block (accumulate + address math).
    uops_per_line: int = 4
    #: Per-lookup overhead uops (index load, bounds, loop control).
    uops_per_lookup_base: int = 6
    #: Per-sample overhead uops (offsets fetch, output zeroing per block).
    uops_per_sample_base: int = 12

    def __post_init__(self) -> None:
        if min(self.uops_per_line, self.uops_per_lookup_base, self.uops_per_sample_base) < 0:
            raise ConfigError("kernel uop costs must be non-negative")

    def instructions_per_lookup(self, row_lines: int) -> int:
        """Total instructions per lookup including the line loads."""
        if row_lines <= 0:
            raise ConfigError("row_lines must be positive")
        return self.uops_per_lookup_base + row_lines * (self.uops_per_line + 1)

    def prefetch_distance_instructions(self, distance: int, row_lines: int) -> int:
        """Instructions between a look-ahead prefetch and its demand load.

        The paper: "a prefetch distance of 4 ... corresponds to about 200
        instructions between look-ahead prefetch and demand load".
        """
        if distance < 0:
            raise ConfigError("distance must be non-negative")
        return distance * self.instructions_per_lookup(row_lines)
