"""Trace-driven execution of the embedding stage.

This engine plays Algorithm 1 against a simulated core + memory hierarchy:
every pooled lookup expands to its cache-line loads, every load walks
L1D/L2/L3/DRAM, and the :class:`~repro.cpu.core.CoreModel` converts the
resulting latencies into cycles with window/MSHR-limited overlap.

The engine also owns the *mechanism* of software prefetching: a
:class:`PrefetchPlan` (policy comes from :mod:`repro.core.swpf`) makes the
engine issue look-ahead prefetches ``distance`` lookups ahead, covering
``amount_lines`` of the future row.  Timeliness is handled exactly:
a prefetched line that has landed in L1 but whose fetch has not yet
*completed* exposes the residual latency to the demand load (late
prefetch); a prefetched line evicted before use simply misses again
(pollution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cpu.core import CoreModel, CoreSpec
from ..errors import ConfigError
from ..mem.hierarchy import MemoryHierarchy
from ..mem.tlb import TLBModel
from ..obs import hooks as obs_hooks
from ..obs.cpi import embedding_cpi_stack, publish_cpi_stack
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap
from .kernels import KernelCostModel

__all__ = ["PrefetchPlan", "EmbeddingRunResult", "run_embedding_trace"]


@dataclass(frozen=True)
class PrefetchPlan:
    """Mechanism-level description of application-initiated prefetching.

    Mirrors Algorithm 3 of the paper: at lookup ``i``, prefetch
    ``amount_lines`` cache lines of the row used by lookup
    ``i + distance``, into ``target_level``.
    """

    distance: int = 4
    amount_lines: int = 8
    target_level: str = "l1"

    def __post_init__(self) -> None:
        if self.distance <= 0:
            raise ConfigError(f"prefetch distance must be positive, got {self.distance}")
        if self.amount_lines <= 0:
            raise ConfigError(
                f"prefetch amount must be positive, got {self.amount_lines}"
            )
        if self.target_level not in ("l1", "l2", "l3"):
            raise ConfigError(f"bad prefetch target {self.target_level!r}")


@dataclass
class EmbeddingRunResult:
    """Measured outcome of running the embedding stage of a trace."""

    total_cycles: float
    batch_cycles: List[float]
    loads: int
    effective_latency_sum: float
    instr_count: int
    utilization: float
    stall_fraction: float
    window_stall_cycles: float
    mshr_stall_cycles: float
    l1_hit_rate: float
    l2_hit_rate: float
    l3_hit_rate: float
    dram_fraction: float
    dram_bytes: int
    prefetches_issued: int
    level_fractions: Dict[str, float] = field(default_factory=dict)
    issue_cycles: float = 0.0

    @property
    def avg_load_latency(self) -> float:
        """Average *effective* demand-load latency in cycles.

        Effective means after prefetch hiding and including late-prefetch
        residuals — the quantity VTune's average load latency reports.
        """
        return self.effective_latency_sum / self.loads if self.loads else 0.0

    @property
    def mean_batch_cycles(self) -> float:
        """Average cycles per batch."""
        if not self.batch_cycles:
            return 0.0
        return sum(self.batch_cycles) / len(self.batch_cycles)

    def cpi_stack(self) -> Dict[str, float]:
        """Where the cycles went, as fractions of the total.

        ``issue`` is the ideal front-end time (instructions / width);
        ``window_stall`` and ``queue_stall`` are the two memory-stall
        classes the core model distinguishes (full-window vs load-queue /
        fill-buffer waits); ``drain`` is everything else — mostly the
        end-of-batch waits for in-flight misses.  A VTune-style top-down
        view of the simulated execution.
        """
        if self.total_cycles <= 0:
            return {"issue": 0.0, "window_stall": 0.0, "queue_stall": 0.0, "drain": 0.0}
        total = self.total_cycles
        issue = min(self.issue_cycles, total)
        window = self.window_stall_cycles
        queue = self.mshr_stall_cycles
        drain = max(0.0, total - issue - window - queue)
        return {
            "issue": issue / total,
            "window_stall": window / total,
            "queue_stall": queue / total,
            "drain": drain / total,
        }


def _build_lookup_stream(
    trace: EmbeddingTrace,
    amap: AddressMap,
    batch: int,
    loop_order: str,
    output_base_line: int,
    model_stores: bool,
):
    """Flatten one batch's lookups into execution order.

    Returns ``(first_lines, sample_flags, out_bases)``: the row first-line
    per lookup, whether a (table, sample) segment starts at that position
    (per-sample kernel overhead is charged there), and — when stores are
    modeled — the output row's first line for that segment (-1 elsewhere).
    """
    import numpy as np

    row_lines = amap.row_lines
    num_tables = trace.num_tables
    line_parts = []
    flag_parts = []
    out_parts = []

    def segment(t: int, tb, k_first: int, k_last: int):
        """Lines + flags for samples [k_first, k_last) of table t."""
        offsets = tb.offsets
        lines = amap.batch_first_lines(t, tb)[offsets[k_first] : offsets[k_last]]
        flags = np.zeros(lines.size, dtype=bool)
        outs = np.full(lines.size, -1, dtype=np.int64)
        base0 = int(offsets[k_first])
        region = output_base_line + (
            (batch * num_tables + t) * tb.batch_size * row_lines
        )
        for k in range(k_first, k_last):
            start = int(offsets[k]) - base0
            if start < lines.size and int(offsets[k + 1]) > int(offsets[k]):
                flags[start] = True
                if model_stores and outs[start] < 0:
                    outs[start] = region + k * row_lines
        return lines, flags, outs

    if loop_order == "table_major":
        for t in range(num_tables):
            tb = trace.table_batch(batch, t)
            lines, flags, outs = segment(t, tb, 0, tb.batch_size)
            line_parts.append(lines)
            flag_parts.append(flags)
            out_parts.append(outs)
    else:  # sample_major
        batch_size = trace.table_batch(batch, 0).batch_size
        for k in range(batch_size):
            for t in range(num_tables):
                tb = trace.table_batch(batch, t)
                lines, flags, outs = segment(t, tb, k, k + 1)
                line_parts.append(lines)
                flag_parts.append(flags)
                out_parts.append(outs)

    if not line_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=bool), empty
    return (
        np.concatenate(line_parts),
        np.concatenate(flag_parts),
        np.concatenate(out_parts),
    )


def run_embedding_trace(
    trace: EmbeddingTrace,
    amap: AddressMap,
    core_spec: CoreSpec,
    hierarchy: MemoryHierarchy,
    plan: Optional[PrefetchPlan] = None,
    cost: KernelCostModel = KernelCostModel(),
    batch_indices: Optional[Sequence[int]] = None,
    tlb: Optional[TLBModel] = None,
    model_stores: bool = False,
    loop_order: str = "table_major",
) -> EmbeddingRunResult:
    """Execute the embedding stage of ``trace`` and measure it.

    Parameters
    ----------
    trace, amap:
        The lookups and the physical table layout.
    core_spec, hierarchy:
        The core resources and the (possibly shared) memory system.
    plan:
        Optional software-prefetch plan (None = baseline demand loads).
    batch_indices:
        Subset of batches to execute (multi-core strides the trace across
        cores); default is every batch in order.
    tlb:
        Optional address-translation model; a row's translation cost is
        added to its first line's load latency.  Off by default (the
        paper's characterization does not isolate translation).
    model_stores:
        Also execute the output-vector stores of Algorithm 1
        (``vec.st accm``): one write-allocated output row per (sample,
        table) in a region past the tables.  Off by default.
    loop_order:
        ``"table_major"`` (the paper's Algorithm 1 and PyTorch's
        per-table ``embedding_bag`` calls: all of table t's lookups, then
        table t+1) or ``"sample_major"`` (all tables for sample k, then
        sample k+1) — the ordering that trades intra-table reuse for
        per-sample output locality.  Section 3.1's inter-table thrash
        discussion is about exactly this choice.
    """
    if loop_order not in ("table_major", "sample_major"):
        raise ConfigError(f"unknown loop order {loop_order!r}")
    if amap.num_tables != trace.num_tables:
        raise ConfigError("address map and trace disagree on table count")
    core = CoreModel(core_spec)
    row_lines = amap.row_lines
    if plan and plan.amount_lines > row_lines:
        plan = PrefetchPlan(plan.distance, row_lines, plan.target_level)
    # Output buffers live past the last table, 1 GiB away — far enough
    # that they never alias table lines in any cache.
    output_base_line = (
        amap.table_bases[-1]
        + amap.rows_per_table[-1] * amap.row_bytes
        + (1 << 30)
    ) // 64

    batch_cycles: List[float] = []
    effective_latency_sum = 0.0
    demand_loads = 0
    hit_threshold = CoreModel.HIT_PIPELINE_THRESHOLD
    # line -> completion time of an in-flight prefetch of that line.
    pf_completion: Dict[int, float] = {}

    # Observability: all hooks sit at batch granularity (one branch per
    # batch / per load in the scalar loop), never inside the vectorized
    # walk, so an active observation cannot perturb results or fast-path
    # throughput.  Hierarchy stats are published as end-minus-start deltas
    # because multicore runs reuse hierarchies across many calls.
    obs = obs_hooks.active()
    if obs is not None:
        obs_tid = obs.tracer.new_sim_track("embedding")
        obs_hist = obs.metrics.histogram("mem.load_latency_cycles")
        hstats0 = hierarchy.stats
        obs_start_hits = dict(hstats0.level_hits)
        obs_start_latency = hstats0.total_latency_cycles
        obs_start_accesses = hstats0.demand_accesses
        obs_start_prefetches = hstats0.prefetch_requests
        obs_start_dram_bytes = hstats0.dram_bytes

    # The bulk path exploits a decoupling: with no prefetching (software or
    # hardware), no TLB and no stores, the hierarchy's state depends only
    # on the access *order* (not on core time) and the core's state depends
    # only on the latency *sequence* — so each batch can run as one
    # vectorized hierarchy walk followed by one bulk core replay, with
    # results identical to the interleaved scalar loop.  The power-of-two
    # issue-width condition keeps the replay's fused cycle arithmetic
    # bit-exact (see CoreModel.issue_demand_chunk).
    use_bulk = (
        plan is None
        and tlb is None
        and not model_stores
        and not hierarchy.hw_prefetch_enabled
        and hierarchy.batch_capable
        and core_spec.issue_width & (core_spec.issue_width - 1) == 0
    )

    # Local bindings for the scalar loop: these calls run once per cache
    # line (millions per figure), where attribute-lookup overhead is real.
    load_timing = hierarchy.load_timing
    prefetch_timing = hierarchy.prefetch_timing
    hw_candidates = hierarchy.hw_prefetch_candidates
    issue_compute = core.issue_compute
    issue_load = core.issue_load
    issue_prefetch = core.issue_prefetch
    issue_merged_load = core.issue_merged_load
    pf_get = pf_completion.get
    pf_pop = pf_completion.pop
    uops_per_line = cost.uops_per_line
    uops_per_lookup = cost.uops_per_lookup_base
    uops_per_sample = cost.uops_per_sample_base

    which_batches = batch_indices if batch_indices is not None else range(trace.num_batches)
    for b in which_batches:
        batch_start = core.now
        stream_lines, sample_flags, out_bases = _build_lookup_stream(
            trace, amap, b, loop_order, output_base_line, model_stores
        )
        n_lookups = stream_lines.size
        if use_bulk:
            if n_lookups:
                lines_all = (
                    stream_lines[:, None] + np.arange(row_lines, dtype=np.int64)
                ).ravel()
                pre_uops = np.full(
                    lines_all.size, cost.uops_per_line, dtype=np.int64
                )
                pre_uops[::row_lines] += cost.uops_per_lookup_base
                flag_idx = np.nonzero(sample_flags)[0]
                pre_uops[flag_idx * row_lines] += cost.uops_per_sample_base
                latencies = hierarchy.access_lines(lines_all)
                core.issue_demand_chunk(latencies, pre_uops)
                demand_loads += lines_all.size
                if obs is not None:
                    obs_hist.observe_many(latencies)
                # Left-to-right accumulation matches the scalar loop's
                # float rounding exactly (np.sum's pairwise order would
                # not).
                acc = effective_latency_sum
                for latency in latencies.tolist():
                    acc += latency
                effective_latency_sum = acc
            core.drain()
            batch_cycles.append(core.now - batch_start)
            if obs is not None:
                obs.tracer.add_sim_span(
                    f"batch[{b}]", "sim.embedding", batch_start,
                    core.now - batch_start, tid=obs_tid,
                    args={"loads": int(n_lookups) * row_lines},
                )
            continue
        stream_list = stream_lines.tolist()
        flags_list = sample_flags.tolist()
        for pos in range(n_lookups):
            if flags_list[pos]:
                issue_compute(uops_per_sample)
                if model_stores and out_bases[pos] >= 0:
                    # Write-allocate the sample's output row (zeroing
                    # kernel + final vec.st of the accumulators).
                    out_first = int(out_bases[pos])
                    for cb in range(row_lines):
                        store_latency = load_timing(out_first + cb)[0]
                        issue_compute(1)
                        issue_load(
                            store_latency,
                            is_miss=store_latency > hit_threshold,
                        )
            issue_compute(uops_per_lookup)
            if tlb is not None:
                tlb_penalty = tlb.translate_line(stream_list[pos])
            else:
                tlb_penalty = 0.0
            if plan is not None:
                j = pos + plan.distance
                if j < n_lookups:
                    pf_first = stream_list[j]
                    for cb in range(plan.amount_lines):
                        line = pf_first + cb
                        pending = pf_get(line, 0.0)
                        if pending > core.now:
                            # Already in flight; the intrinsic is a no-op
                            # but still occupies an issue slot.
                            issue_compute(1)
                            continue
                        pf_latency = prefetch_timing(line, plan.target_level)[0]
                        issue_prefetch(pf_latency)
                        if pf_latency > hit_threshold:
                            pf_completion[line] = core.now + pf_latency
            base_line = stream_list[pos]
            for cb in range(row_lines):
                line = base_line + cb
                issue_compute(uops_per_line)
                latency, level = load_timing(line)
                if cb == 0 and tlb_penalty > 0.0:
                    # Translation delays the row's first access.
                    latency = latency + tlb_penalty
                pending = pf_pop(line, None)
                if pending is not None and pending > core.now:
                    # The prefetch of this line is still in flight: the
                    # demand load merges into its MSHR entry and waits
                    # only for the residual (late prefetch), consuming
                    # no extra fill buffer.
                    effective_latency_sum += pending - core.now
                    demand_loads += 1
                    if obs is not None:
                        obs_hist.observe(pending - core.now)
                    issue_merged_load(pending)
                else:
                    effective_latency_sum += latency
                    demand_loads += 1
                    if obs is not None:
                        obs_hist.observe(latency)
                    issue_load(latency, is_miss=latency > hit_threshold)
                # Hardware prefetches ride the L2-side superqueue, not
                # the core's L1 fill buffers, so they never throttle
                # demand concurrency — but their *arrival time* still
                # gates later demand loads (merged waits), which is why
                # they cannot rescue the irregular row accesses.
                for cand, target in hw_candidates(line, level == "l1"):
                    if pf_get(cand, 0.0) > core.now:
                        continue
                    pf_latency = prefetch_timing(cand, target)[0]
                    if pf_latency > hit_threshold:
                        pf_completion[cand] = core.now + pf_latency
        core.drain()
        batch_cycles.append(core.now - batch_start)
        pf_completion.clear()
        if obs is not None:
            obs.tracer.add_sim_span(
                f"batch[{b}]", "sim.embedding", batch_start,
                core.now - batch_start, tid=obs_tid,
            )

    total = core.now
    hstats = hierarchy.stats
    if obs is not None:
        registry = obs.metrics
        delta_hits = {
            level: hstats.level_hits.get(level, 0) - obs_start_hits.get(level, 0)
            for level in hstats.level_hits
        }
        for level, count in delta_hits.items():
            if count:
                registry.counter("mem.level_hits", level=level).inc(count)
        registry.counter("mem.demand_accesses").inc(
            hstats.demand_accesses - obs_start_accesses
        )
        registry.counter("mem.latency_cycles_total").inc(
            hstats.total_latency_cycles - obs_start_latency
        )
        registry.counter("mem.prefetch_requests").inc(
            hstats.prefetch_requests - obs_start_prefetches
        )
        registry.counter("mem.dram_bytes").inc(hstats.dram_bytes - obs_start_dram_bytes)
        core.publish_metrics(registry, stage="embedding")
        cfg = hierarchy.config
        publish_cpi_stack(
            registry,
            embedding_cpi_stack(
                "embedding",
                total,
                core.instr_count / core_spec.issue_width,
                delta_hits,
                cfg.l3_latency,
                cfg.l3_latency + cfg.dram.base_latency_cycles,
            ),
        )
    return EmbeddingRunResult(
        total_cycles=total,
        batch_cycles=batch_cycles,
        loads=demand_loads,
        effective_latency_sum=effective_latency_sum,
        instr_count=core.instr_count,
        utilization=core.utilization,
        stall_fraction=core.stall_fraction,
        window_stall_cycles=core.window_stall_cycles,
        mshr_stall_cycles=core.mshr_stall_cycles,
        l1_hit_rate=hierarchy.l1.stats.hit_rate,
        l2_hit_rate=hierarchy.l2.stats.hit_rate,
        l3_hit_rate=hierarchy.l3.stats.hit_rate,
        dram_fraction=hstats.hit_fraction("dram"),
        dram_bytes=hstats.dram_bytes,
        prefetches_issued=core.prefetches,
        level_fractions={
            level: hstats.hit_fraction(level) for level in ("l1", "l2", "l3", "dram")
        },
        issue_cycles=core.instr_count / core_spec.issue_width,
    )
