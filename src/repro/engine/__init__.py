"""Execution and timing engines.

* :mod:`repro.engine.kernels` — expands ``embedding_bag`` calls into the
  micro-op / cache-line stream of the paper's Algorithm 1,
* :mod:`repro.engine.embedding_exec` — trace-driven execution of the
  embedding stage on a core + hierarchy (the measured stage),
* :mod:`repro.engine.mlp_exec` — roofline timing of the MLP/interaction
  stages (compute-bound and regular, so analytic),
* :mod:`repro.engine.inference` — end-to-end single-batch composition,
* :mod:`repro.engine.multicore` — many cores sharing LLC + DRAM bandwidth.
"""

from .embedding_exec import EmbeddingRunResult, run_embedding_trace
from .inference import InferenceTiming, StageTimes, time_inference_sequential
from .kernels import KernelCostModel
from .mlp_exec import MLPTiming, time_interaction, time_mlp, time_top_mlp
from .multicore import MulticoreResult, run_embedding_multicore

__all__ = [
    "EmbeddingRunResult",
    "InferenceTiming",
    "KernelCostModel",
    "MLPTiming",
    "MulticoreResult",
    "StageTimes",
    "run_embedding_multicore",
    "run_embedding_trace",
    "time_inference_sequential",
    "time_interaction",
    "time_mlp",
    "time_top_mlp",
]
