"""Multi-core execution: shared LLC and DRAM bandwidth contention.

The paper maps one batch per physical core and uses every core of a socket
(Section 6).  Simulating 24+ full cache hierarchies access-by-access is
wasteful, so this engine uses *detailed core sampling*:

* ``detailed_cores`` hierarchies are simulated cache-line by cache-line,
  sharing one L3 slice (scaled to their fair share of the socket's LLC)
  and one DRAM channel — capturing the constructive/destructive sharing
  classes of Section 3.1;
* batches are interleaved round-robin across the detailed cores so the
  shared L3 sees concurrent working sets, not sequential ones;
* aggregate bandwidth demand is extrapolated from the detailed cores to
  the full core count, and the DRAM model's queueing factor is fixed-point
  iterated so every simulated access sees the loaded latency.

Scaling the shared L3 to ``detailed/total`` of its size keeps per-core LLC
pressure faithful; constructive sharing across more than ``detailed_cores``
cores is under-represented (documented divergence in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..cpu.platform import CPUSpec
from ..errors import ConfigError
from ..mem.dram import DRAMConfig, DRAMModel
from ..mem.hierarchy import (
    HierarchyConfig,
    MemoryHierarchy,
    build_hierarchy,
    make_cache,
)
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap
from ..units import CACHE_LINE_BYTES
from .embedding_exec import EmbeddingRunResult, PrefetchPlan, run_embedding_trace
from .kernels import KernelCostModel

__all__ = ["MulticoreResult", "run_embedding_multicore", "scaled_shared_l3_config"]

#: Detailed hierarchies simulated regardless of the modeled core count.
DEFAULT_DETAILED_CORES = 4


@dataclass
class MulticoreResult:
    """Outcome of a multi-core embedding run."""

    num_cores: int
    detailed_cores: int
    mean_batch_cycles: float
    per_core_cycles: List[float]
    utilization: float
    achieved_bandwidth_bytes_per_cycle: float
    l1_hit_rate: float
    avg_load_latency: float
    dram_fraction: float
    emb_utilization: float
    emb_stall_fraction: float

    def bandwidth_gb_s(self, frequency_hz: float) -> float:
        """Aggregate achieved DRAM bandwidth in GB/s."""
        return self.achieved_bandwidth_bytes_per_cycle * frequency_hz / 1e9


def scaled_shared_l3_config(
    base: HierarchyConfig, detailed: int, total_cores: int
) -> HierarchyConfig:
    """Shrink the shared L3 to the detailed cores' fair share of the LLC."""
    if detailed <= 0 or total_cores <= 0:
        raise ConfigError("core counts must be positive")
    if detailed >= total_cores:
        return base
    target = base.l3_size * detailed // total_cores
    way_bytes = base.l3_ways * CACHE_LINE_BYTES
    sets = max(1, target // way_bytes)
    scaled = sets * way_bytes
    minimum = 2 * base.l2_size
    while scaled <= minimum:
        sets *= 2
        scaled = sets * way_bytes
    return replace(base, l3_size=scaled)


def _equilibrium_utilization(
    unloaded_demand_ratio: float, memory_fraction: float, dram: DRAMConfig
) -> float:
    """Channel load where offered traffic equals what the cores sustain.

    With unloaded demand ``D0`` (as a fraction of peak), loading the
    channel to ``u`` inflates memory-bound time by
    ``s(u) = 1 + memory_fraction * (qf(u) - 1)``, throttling demand to
    ``D0 / s(u)``.  Equilibrium: ``u = D0 / s(u)`` — monotone, solved by
    bisection.  Demand below peak still pays its mild queueing.
    """
    if unloaded_demand_ratio <= 0:
        return 0.0
    probe = DRAMModel(dram)

    def scaled_demand(u: float) -> float:
        probe.set_utilization(u)
        slowdown = 1.0 + memory_fraction * (probe.queueing_factor() - 1.0)
        return unloaded_demand_ratio / slowdown

    lo, hi = 0.0, 0.95
    if scaled_demand(hi) >= hi:
        return hi
    for _ in range(40):
        mid = (lo + hi) / 2
        if scaled_demand(mid) >= mid:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def _combine(results: List[EmbeddingRunResult]) -> EmbeddingRunResult:
    """Merge the per-batch results of one core into a single record."""
    total = sum(r.total_cycles for r in results)
    loads = sum(r.loads for r in results)
    instr = sum(r.instr_count for r in results)
    weight = total or 1.0
    return EmbeddingRunResult(
        total_cycles=total,
        batch_cycles=[c for r in results for c in r.batch_cycles],
        loads=loads,
        effective_latency_sum=sum(r.effective_latency_sum for r in results),
        instr_count=instr,
        utilization=sum(r.utilization * r.total_cycles for r in results) / weight,
        stall_fraction=sum(r.stall_fraction * r.total_cycles for r in results) / weight,
        window_stall_cycles=sum(r.window_stall_cycles for r in results),
        mshr_stall_cycles=sum(r.mshr_stall_cycles for r in results),
        l1_hit_rate=results[-1].l1_hit_rate,
        l2_hit_rate=results[-1].l2_hit_rate,
        l3_hit_rate=results[-1].l3_hit_rate,
        dram_fraction=results[-1].dram_fraction,
        dram_bytes=results[-1].dram_bytes,
        prefetches_issued=sum(r.prefetches_issued for r in results),
        level_fractions=results[-1].level_fractions,
        issue_cycles=sum(r.issue_cycles for r in results),
    )


def run_embedding_multicore(
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    num_cores: int,
    plan: Optional[PrefetchPlan] = None,
    detailed_cores: int = DEFAULT_DETAILED_CORES,
    bandwidth_iterations: int = 2,
    hw_prefetch: bool = True,
    cost: KernelCostModel = KernelCostModel(),
    hier_override: Optional[HierarchyConfig] = None,
) -> MulticoreResult:
    """Run the embedding stage on ``num_cores`` cores of ``platform``.

    ``hier_override`` substitutes the per-core hierarchy geometry (e.g. the
    halved SMT caches of the DP-HT scheme) before LLC-share scaling.
    """
    if num_cores <= 0:
        raise ConfigError("num_cores must be positive")
    if bandwidth_iterations <= 0:
        raise ConfigError("need at least one bandwidth iteration")
    detailed = min(num_cores, detailed_cores)
    base_config = hier_override if hier_override is not None else platform.hierarchy
    hier_config = scaled_shared_l3_config(base_config, detailed, num_cores)
    sockets_used = -(-num_cores // platform.cores_per_socket)
    peak_bw = platform.peak_dram_bw_bytes_per_cycle * min(
        sockets_used, platform.sockets
    )

    utilization = 0.0
    final_cores: List[EmbeddingRunResult] = []
    achieved_bw = 0.0
    for iteration in range(bandwidth_iterations):
        shared_l3 = make_cache(
            "l3", hier_config.l3_size, hier_config.l3_ways, policy=hier_config.policy
        )
        shared_dram = DRAMModel(hier_config.dram)
        shared_dram.set_utilization(utilization)
        hierarchies: List[MemoryHierarchy] = [
            build_hierarchy(
                hier_config,
                shared_l3=shared_l3,
                shared_dram=shared_dram,
                hw_prefetch=hw_prefetch,
                seed=c,
            )
            for c in range(detailed)
        ]
        per_core: List[List[EmbeddingRunResult]] = [[] for _ in range(detailed)]
        # Round-robin batch interleaving so detailed cores contend in the
        # shared L3 within the same "round" of execution.
        rounds = -(-trace.num_batches // detailed)
        for r in range(rounds):
            for c in range(detailed):
                b = r * detailed + c
                if b >= trace.num_batches:
                    break
                per_core[c].append(
                    run_embedding_trace(
                        trace,
                        amap,
                        platform.core,
                        hierarchies[c],
                        plan=plan,
                        cost=cost,
                        batch_indices=[b],
                    )
                )
        final_cores = [_combine(rs) for rs in per_core if rs]
        mean_cycles = sum(r.total_cycles for r in final_cores) / len(final_cores)
        detailed_bw = shared_dram.bytes_transferred / mean_cycles if mean_cycles else 0.0
        demand_bw = detailed_bw * num_cores / detailed
        achieved_bw = min(demand_bw, peak_bw)
        if iteration == 0 and bandwidth_iterations > 1:
            # Solve for the self-consistent channel load before the final
            # pass: naively feeding demand/peak back explodes at saturation
            # (rho -> cap -> huge inflation -> demand collapses -> repeat).
            memory_fraction = min(
                0.95,
                sum(r.stall_fraction * r.total_cycles for r in final_cores)
                / max(sum(r.total_cycles for r in final_cores), 1e-9),
            )
            utilization = _equilibrium_utilization(
                demand_bw / peak_bw if peak_bw > 0 else 0.0,
                memory_fraction,
                hier_config.dram,
            )
        else:
            utilization = min(demand_bw / peak_bw, 1.0) if peak_bw > 0 else 0.0

    loads = sum(r.loads for r in final_cores) or 1
    batch_counts = sum(len(r.batch_cycles) for r in final_cores) or 1
    total_cycles = sum(r.total_cycles for r in final_cores)
    return MulticoreResult(
        num_cores=num_cores,
        detailed_cores=detailed,
        mean_batch_cycles=sum(
            c for r in final_cores for c in r.batch_cycles
        ) / batch_counts,
        per_core_cycles=[r.total_cycles for r in final_cores],
        utilization=utilization,
        achieved_bandwidth_bytes_per_cycle=achieved_bw,
        l1_hit_rate=sum(r.l1_hit_rate * r.loads for r in final_cores) / loads,
        avg_load_latency=sum(r.effective_latency_sum for r in final_cores) / loads,
        dram_fraction=sum(r.dram_fraction * r.loads for r in final_cores) / loads,
        emb_utilization=sum(r.utilization * r.total_cycles for r in final_cores)
        / (total_cycles or 1.0),
        emb_stall_fraction=sum(r.stall_fraction * r.total_cycles for r in final_cores)
        / (total_cycles or 1.0),
    )
