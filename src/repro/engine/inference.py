"""End-to-end single-batch inference timing.

Composes the measured embedding stage with the analytic dense stages into
the sequential (baseline) execution of Fig 11's left-hand design:
bottom MLP -> embedding -> interaction -> top MLP on one core.

The hyperthreading schedulers in :mod:`repro.core.hyperthread` reuse the
:class:`StageTimes` produced here and re-compose the stages onto SMT
threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cpu.core import CoreSpec
from ..cpu.smt import ThreadProfile
from ..errors import ConfigError
from ..model.configs import ModelConfig
from ..obs import hooks as obs_hooks
from ..obs.cpi import dense_cpi_stack, publish_cpi_stack
from ..units import cycles_to_ms
from .embedding_exec import EmbeddingRunResult
from .mlp_exec import MLPTiming, time_interaction, time_mlp, time_top_mlp

__all__ = ["StageTimes", "InferenceTiming", "time_inference_sequential"]


@dataclass(frozen=True)
class StageTimes:
    """Per-stage cycles for one batch."""

    bottom_mlp: float
    embedding: float
    interaction: float
    top_mlp: float

    @property
    def total(self) -> float:
        """Sequential batch time."""
        return self.bottom_mlp + self.embedding + self.interaction + self.top_mlp

    @property
    def embedding_fraction(self) -> float:
        """Embedding share of the sequential time (Fig 1's quantity)."""
        return self.embedding / self.total if self.total > 0 else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Stage-name -> fraction-of-total mapping (sums to 1)."""
        total = self.total
        if total <= 0:
            raise ConfigError("cannot break down a zero-time inference")
        return {
            "bottom_mlp": self.bottom_mlp / total,
            "embedding": self.embedding / total,
            "interaction": self.interaction / total,
            "top_mlp": self.top_mlp / total,
        }


@dataclass(frozen=True)
class InferenceTiming:
    """Full description of one batch's sequential execution."""

    model: str
    stages: StageTimes
    frequency_hz: float
    embedding_profile: ThreadProfile
    bottom_mlp_profile: ThreadProfile

    @property
    def batch_cycles(self) -> float:
        """Sequential cycles for the batch."""
        return self.stages.total

    @property
    def batch_ms(self) -> float:
        """Sequential batch latency in milliseconds."""
        return cycles_to_ms(self.stages.total, self.frequency_hz)


def time_inference_sequential(
    model: ModelConfig,
    emb_result: EmbeddingRunResult,
    core_spec: CoreSpec,
    batch_size: int,
) -> InferenceTiming:
    """Compose measured embedding + analytic dense stages for one batch.

    ``emb_result`` must come from running the *same* model/trace shape; its
    mean batch cycles become the embedding stage time, and its utilization
    and stall fraction feed the SMT thread profile.
    """
    if batch_size <= 0:
        raise ConfigError("batch_size must be positive")
    bottom = time_mlp(model.dense_features, model.bottom_mlp, batch_size, core_spec)
    interaction = time_interaction(
        batch_size, model.num_tables, model.embedding_dim, core_spec
    )
    top = time_top_mlp(
        model.num_tables, model.embedding_dim, model.top_mlp, batch_size, core_spec
    )
    stages = StageTimes(
        bottom_mlp=bottom.cycles,
        embedding=emb_result.mean_batch_cycles,
        interaction=interaction.cycles,
        top_mlp=top.cycles,
    )
    obs = obs_hooks.active()
    if obs is not None:
        # One sim track showing the sequential stage layout of this batch;
        # dense stages also publish Top-down CPI buckets (the embedding
        # stage's stack comes from the trace-driven engine itself).
        tid = obs.tracer.new_sim_track(f"inference:{model.name}")
        cursor = 0.0
        for stage_name, cycles in (
            ("bottom_mlp", stages.bottom_mlp),
            ("embedding", stages.embedding),
            ("interaction", stages.interaction),
            ("top_mlp", stages.top_mlp),
        ):
            obs.tracer.add_sim_span(
                stage_name, "sim.inference", cursor, cycles, tid=tid,
                args={"model": model.name},
            )
            cursor += cycles
        for stage_name, timing_result in (
            ("bottom_mlp", bottom),
            ("interaction", interaction),
            ("top_mlp", top),
        ):
            publish_cpi_stack(
                obs.metrics,
                dense_cpi_stack(
                    stage_name, timing_result.cycles, timing_result.stall_fraction
                ),
            )
    emb_profile = ThreadProfile(
        name="embedding",
        time_cycles=emb_result.mean_batch_cycles,
        utilization=emb_result.utilization,
        stall_fraction=min(1.0, emb_result.stall_fraction),
    )
    bottom_profile = ThreadProfile(
        name="bottom_mlp",
        time_cycles=bottom.cycles,
        utilization=bottom.utilization,
        stall_fraction=bottom.stall_fraction,
    )
    return InferenceTiming(
        model=model.name,
        stages=stages,
        frequency_hz=core_spec.frequency_hz,
        embedding_profile=emb_profile,
        bottom_mlp_profile=bottom_profile,
    )
