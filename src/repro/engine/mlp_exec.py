"""Roofline timing of the dense stages (bottom MLP, interaction, top MLP).

These stages are compute-bound with regular, prefetcher-friendly access
patterns (the paper never needs to instrument them internally), so they are
timed analytically:

``cycles = max(flops / (peak_flops_per_cycle * efficiency),
               streamed_bytes / stream_bandwidth) + per-layer overhead``

The weight footprints are a few MB (Section 4.4), resident in L2/L3, which
is why the embedding stage's cache pressure and the MLP stage barely
interact — the property MP-HT exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cpu.core import CoreSpec
from ..errors import ConfigError
from ..model.interaction import interaction_flops, interaction_output_dim
from ..units import FLOAT32_BYTES

__all__ = ["MLPTiming", "time_mlp", "time_interaction", "time_top_mlp"]

#: Fraction of peak FMA throughput a well-tuned GEMM kernel achieves at
#: inference batch sizes (IPEX/oneDNN territory).
GEMM_EFFICIENCY = 0.55

#: Sustained L2/L3 streaming bandwidth for weight reads, bytes per cycle.
STREAM_BYTES_PER_CYCLE = 32.0

#: Fixed overhead per layer (dispatch, edge handling), cycles.
LAYER_OVERHEAD_CYCLES = 300.0

#: Issue utilization of a dense GEMM kernel (feeds the SMT model).
GEMM_UTILIZATION = 0.85

#: Stall fraction of a dense GEMM kernel (almost never window-stalled).
GEMM_STALL_FRACTION = 0.03


@dataclass(frozen=True)
class MLPTiming:
    """Analytic timing of one dense stage for one batch."""

    cycles: float
    flops: int
    weight_bytes: int
    utilization: float = GEMM_UTILIZATION
    stall_fraction: float = GEMM_STALL_FRACTION

    @property
    def achieved_flops_per_cycle(self) -> float:
        """Flops per cycle actually sustained."""
        return self.flops / self.cycles if self.cycles > 0 else 0.0


def time_mlp(
    in_features: int,
    widths: Sequence[int],
    batch_size: int,
    core_spec: CoreSpec,
    efficiency: float = GEMM_EFFICIENCY,
) -> MLPTiming:
    """Roofline time of an MLP stack for one batch."""
    if in_features <= 0 or batch_size <= 0:
        raise ConfigError("MLP shape must be positive")
    if not widths:
        raise ConfigError("an MLP needs at least one layer")
    if not 0.0 < efficiency <= 1.0:
        raise ConfigError(f"efficiency must be in (0,1], got {efficiency}")
    flops = 0
    weight_bytes = 0
    previous = in_features
    for width in widths:
        if width <= 0:
            raise ConfigError("layer widths must be positive")
        flops += 2 * batch_size * previous * width
        weight_bytes += (previous * width + width) * FLOAT32_BYTES
        previous = width
    compute_cycles = flops / (core_spec.fp32_flops_per_cycle * efficiency)
    # Weights are streamed once per batch; activations are negligible.
    memory_cycles = weight_bytes / STREAM_BYTES_PER_CYCLE
    cycles = max(compute_cycles, memory_cycles) + LAYER_OVERHEAD_CYCLES * len(widths)
    return MLPTiming(cycles=cycles, flops=flops, weight_bytes=weight_bytes)


def time_interaction(
    batch_size: int, num_tables: int, embedding_dim: int, core_spec: CoreSpec
) -> MLPTiming:
    """Roofline time of the pairwise-dot interaction stage."""
    if batch_size <= 0 or num_tables < 0 or embedding_dim <= 0:
        raise ConfigError("interaction shape must be positive")
    flops = interaction_flops(batch_size, num_tables, embedding_dim)
    # Interaction reads the (batch, tables+1, dim) activations once.
    bytes_read = batch_size * (num_tables + 1) * embedding_dim * FLOAT32_BYTES
    compute_cycles = flops / (core_spec.fp32_flops_per_cycle * GEMM_EFFICIENCY)
    memory_cycles = bytes_read / STREAM_BYTES_PER_CYCLE
    cycles = max(compute_cycles, memory_cycles) + LAYER_OVERHEAD_CYCLES
    return MLPTiming(cycles=cycles, flops=flops, weight_bytes=0)


def time_top_mlp(
    num_tables: int,
    embedding_dim: int,
    top_widths: Sequence[int],
    batch_size: int,
    core_spec: CoreSpec,
) -> MLPTiming:
    """Roofline time of the top MLP, whose input is the interaction output."""
    top_in = interaction_output_dim(num_tables, embedding_dim)
    return time_mlp(top_in, top_widths, batch_size, core_spec)
