"""Distributed tracing for the cluster: one span tree per request.

The single-box request log answers "what happened to request 17"; at
fleet scale the interesting question is *where* — which replica the
router picked, which node the failover landed on, whether the hedge or
the primary won the race.  :class:`FleetTrace` captures that as a span
tree per request, mirroring what a real distributed tracer (Dapper,
OpenTelemetry) would collect from propagated trace context:

* **root** — the request, spanning arrival to final outcome.  Its span
  id IS the request-log exemplar id (``"run:req"``), so the tree joins
  the JSONL request line and the histogram exemplars exactly as the
  single-box path does.
* **gather** — one child per shard lookup (``root/g{k}``), covering the
  primary attempt, any failovers, and any hedges of that shard call.
* **route** — a zero-duration decision span (``.../r{j}``) each time the
  router picks (or fails to pick) a replica, annotated with the policy,
  the chosen node, and how many replicas were eligible.
* **attempt** — one child per call in flight (``.../a{j}``), attributed
  to the node that served it, ending when the response delivered or the
  attempt died (crash, partition, timeout).

Attempt spans are accumulated **per node** — each node's own run log, as
it were — and :meth:`FleetTrace.finalize` merges them deterministically
(sorted by start time, span id as the tiebreak) while widening every
parent to envelope its children, so a wasted hedge that delivers after
the request finished still sits inside its parent's interval.  The
invariant — every child inside its parent, no orphan parents — is what
:func:`check_span_tree` verifies and the tests lock.

Everything is simulated-time only and allocation-free when observation
is off (the cluster loop holds a ``None`` instead of a trace), keeping
the zero-cost contract: hooks-off cluster results are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ids

__all__ = [
    "FLEET_SPAN_KINDS",
    "FleetSpan",
    "FleetTrace",
    "check_span_tree",
    "merge_spans",
]

#: Span kinds a fleet trace contains (also the trace-category suffixes).
FLEET_SPAN_KINDS = ("request", "gather", "route", "attempt")


@dataclass
class FleetSpan:
    """One node of one request's span tree (simulated milliseconds)."""

    span_id: str
    parent_id: Optional[str]
    name: str
    kind: str  # one of FLEET_SPAN_KINDS
    node: Optional[int]
    start_ms: float
    end_ms: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


class FleetTrace:
    """Collects the span trees of one cluster run.

    The cluster loop drives it through ``begin_*`` / ``end_*`` calls; ids
    are derived from the request-log run index so the root span id equals
    the exemplar id on the JSONL line.  Call :meth:`finalize` once after
    the event loop drains, then :meth:`emit` to publish onto the tracer.
    """

    def __init__(self, label: str, run_index: int = 0) -> None:
        self.label = label
        self.run_index = run_index
        #: Router-side spans (roots, gathers, routes), insertion-ordered.
        self.router_spans: List[FleetSpan] = []
        #: Attempt spans per serving node — the per-node run logs.
        self.node_spans: Dict[int, List[FleetSpan]] = {}
        self._by_id: Dict[str, FleetSpan] = {}
        self._route_seq: Dict[str, int] = {}
        self._attempt_seq: Dict[str, int] = {}
        self._finalized: Optional[List[FleetSpan]] = None

    # -- id scheme -----------------------------------------------------------

    def root_id(self, req: int) -> str:
        return ids.request_id(self.run_index, req)

    def slot_id(self, req: int, k: int) -> str:
        return ids.slot_id(self.root_id(req), k)

    # -- recording -----------------------------------------------------------

    def _add(
        self,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        kind: str,
        node: Optional[int],
        start_ms: float,
        end_ms: float,
        **attrs: object,
    ) -> FleetSpan:
        span = FleetSpan(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            node=node,
            start_ms=float(start_ms),
            end_ms=float(end_ms),
            attrs=dict(attrs),
        )
        self._by_id[span_id] = span
        if kind == "attempt" and node is not None:
            self.node_spans.setdefault(node, []).append(span)
        else:
            self.router_spans.append(span)
        return span

    def begin_request(self, req: int, t_ms: float) -> str:
        rid = self.root_id(req)
        self._add(rid, None, f"req[{req}]", "request", None, t_ms, t_ms)
        return rid

    def end_request(self, req: int, t_ms: float, outcome: str, **attrs) -> None:
        span = self._by_id.get(self.root_id(req))
        if span is None:
            return
        span.end_ms = max(span.end_ms, float(t_ms))
        span.attrs["outcome"] = outcome
        # The SLO-visible finish; the envelope may stretch later to cover
        # a hedge that was still in flight.
        span.attrs["outcome_ms"] = float(t_ms)
        span.attrs.update(attrs)

    def begin_slot(self, req: int, k: int, shard: int, t_ms: float) -> str:
        sid = self.slot_id(req, k)
        self._add(
            sid,
            self.root_id(req),
            f"gather[{shard}]",
            "gather",
            None,
            t_ms,
            t_ms,
            shard=shard,
        )
        return sid

    def end_slot(self, slot_id: str, t_ms: float, outcome: str) -> None:
        span = self._by_id.get(slot_id)
        if span is None:
            return
        span.end_ms = max(span.end_ms, float(t_ms))
        span.attrs["outcome"] = outcome

    def route(
        self,
        slot_id: str,
        t_ms: float,
        chosen: Optional[int],
        policy: str,
        eligible: int,
        reason: str,
        load_ms: Optional[float] = None,
    ) -> None:
        """Record one router decision under a gather span.

        ``reason`` says why the router was consulted (``primary``,
        ``failover``, ``hedge``); ``chosen`` is None when no routable
        replica remained; ``load_ms`` is the chosen node's backlog
        estimate at decision time (least_loaded only).
        """
        seq = self._route_seq.get(slot_id, 0)
        self._route_seq[slot_id] = seq + 1
        self._add(
            ids.route_id(slot_id, seq),
            slot_id,
            f"route:{reason}",
            "route",
            chosen,
            t_ms,
            t_ms,
            policy=policy,
            eligible=eligible,
            reason=reason,
            chosen=chosen,
            load_ms=load_ms,
        )

    def begin_attempt(
        self, slot_id: str, node: int, t_ms: float, hedge: bool
    ) -> str:
        seq = self._attempt_seq.get(slot_id, 0)
        self._attempt_seq[slot_id] = seq + 1
        aid = ids.attempt_id(slot_id, seq)
        self._add(
            aid,
            slot_id,
            f"attempt@n{node}",
            "attempt",
            node,
            t_ms,
            t_ms,
            hedge=hedge,
        )
        return aid

    def end_attempt(
        self, attempt_id: str, t_ms: float, outcome: str, **attrs: object
    ) -> None:
        span = self._by_id.get(attempt_id)
        if span is None:
            return
        span.end_ms = max(span.end_ms, float(t_ms))
        span.attrs["outcome"] = outcome
        span.attrs.update(attrs)

    # -- merge + export ------------------------------------------------------

    def finalize(self) -> List[FleetSpan]:
        """Merge the per-node span logs with the router spans.

        Parents are widened to envelope their children (deepest first,
        so a late attempt stretches its gather which stretches its
        request), then everything merges into one deterministic order.
        The merged list is cached; recording after finalize is a bug.
        """
        if self._finalized is None:
            spans = merge_spans(self.router_spans, self.node_spans)
            self._finalized = spans
        return self._finalized

    def spans(self) -> List[FleetSpan]:
        return self.finalize()

    def emit(self, tracer) -> None:
        """Publish the merged tree onto the tracer's simulated tracks.

        Router-side spans (request/gather/route) go on one ``fleet:...
        router`` track; each node's attempts go on its own ``fleet:...
        node{n}`` track — the Chrome-trace rendering of "per-node run
        logs merged with node attribution".
        """
        spans = self.finalize()
        if not spans:
            return
        router_tid = tracer.new_sim_track(f"fleet:{self.label} router (ms)")
        node_tids: Dict[int, int] = {}
        for node in sorted(self.node_spans):
            node_tids[node] = tracer.new_sim_track(
                f"fleet:{self.label} node{node} (ms)"
            )
        for span in spans:
            if span.kind == "attempt" and span.node is not None:
                tid = node_tids[span.node]
            else:
                tid = router_tid
            args: Dict[str, object] = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "kind": span.kind,
                "node": span.node,
            }
            args.update(span.attrs)
            tracer.add_sim_span(
                span.name,
                f"fleet.{span.kind}",
                span.start_ms,
                span.duration_ms,
                tid=tid,
                args=args,
            )


def merge_spans(
    router_spans: List[FleetSpan],
    node_spans: Dict[int, List[FleetSpan]],
) -> List[FleetSpan]:
    """Envelope-widen parents, then merge all logs into one stable order.

    The order — ``(start_ms, span_id)`` — depends only on simulated time
    and the deterministic id scheme, so the merged trace is byte-stable
    across hosts and ``--jobs`` regardless of how many per-node logs fed
    it.
    """
    by_id: Dict[str, FleetSpan] = {}
    all_spans: List[FleetSpan] = []
    for span in router_spans:
        by_id[span.span_id] = span
        all_spans.append(span)
    for node in sorted(node_spans):
        for span in node_spans[node]:
            by_id[span.span_id] = span
            all_spans.append(span)
    # Children are created after their parents and ids nest by "/", so
    # sorting by id depth (deepest first) widens bottom-up in one pass.
    for span in sorted(
        all_spans, key=lambda s: -s.span_id.count("/")
    ):
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            continue
        parent.start_ms = min(parent.start_ms, span.start_ms)
        parent.end_ms = max(parent.end_ms, span.end_ms)
    all_spans.sort(key=lambda s: (s.start_ms, s.span_id))
    return all_spans


def check_span_tree(spans: List[FleetSpan]) -> List[str]:
    """Structural violations of a merged span forest (empty = healthy).

    Checks the tracing invariants the tests lock: every ``parent_id``
    resolves, every child lies within its parent's interval, attempts
    carry a node, and no span ends before it starts.
    """
    by_id = {span.span_id: span for span in spans}
    problems: List[str] = []
    for span in spans:
        if span.end_ms < span.start_ms:
            problems.append(f"{span.span_id}: negative duration")
        if span.kind == "attempt" and span.node is None:
            problems.append(f"{span.span_id}: attempt without a node")
        if span.parent_id is None:
            if span.kind != "request":
                problems.append(f"{span.span_id}: non-root without parent")
            continue
        parent = by_id.get(span.parent_id)
        if parent is None:
            problems.append(f"{span.span_id}: orphan (parent {span.parent_id})")
            continue
        if span.start_ms < parent.start_ms or span.end_ms > parent.end_ms:
            problems.append(
                f"{span.span_id}: outside parent interval "
                f"[{parent.start_ms}, {parent.end_ms}]"
            )
    return problems
