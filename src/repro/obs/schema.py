"""Minimal JSON-Schema validator (dependency-free).

Supports the subset of draft-07 the schemas in ``tools/trace_schema.json``
use: ``type`` (string or list of strings), ``properties``, ``required``,
``items``, ``enum``, ``minimum``, ``minItems``,
``additionalProperties`` as a schema (applied to every property not named
in ``properties`` — how the bench-record's dynamic benchmark map is
validated), and ``$defs`` with :func:`validate_def` (named sub-schemas
for the request-event and bench-record line formats).
``repro-experiment --trace`` output and the CI smoke test validate
against it without pulling in the ``jsonschema`` package.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["validate", "validate_def"]

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON distinguishes them.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check(instance: object, schema: Dict, path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(
                f"{path or '$'}: expected type {'/'.join(types)}, "
                f"got {type(instance).__name__}"
            )
            return
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path or '$'}: {instance!r} not in enum {schema['enum']}")
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        minimum = schema.get("minimum")
        if minimum is not None and instance < minimum:
            errors.append(f"{path or '$'}: {instance} < minimum {minimum}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path or '$'}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in instance:
                _check(instance[name], subschema, f"{path}.{name}", errors)
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for name, value in instance.items():
                if name not in properties:
                    _check(value, additional, f"{path}.{name}", errors)
    if isinstance(instance, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(instance) < min_items:
            errors.append(
                f"{path or '$'}: {len(instance)} items < minItems {min_items}"
            )
        items = schema.get("items")
        if items is not None:
            for i, element in enumerate(instance):
                _check(element, items, f"{path}[{i}]", errors)


def validate(instance: object, schema: Dict) -> List[str]:
    """Validate ``instance`` against ``schema``; return a list of errors.

    An empty list means the instance conforms.
    """
    errors: List[str] = []
    _check(instance, schema, "", errors)
    return errors


def validate_def(instance: object, schema: Dict, def_name: str) -> List[str]:
    """Validate ``instance`` against the named ``$defs`` entry of ``schema``.

    Used for the line-oriented contracts that share
    ``tools/trace_schema.json``: request-log events
    (``$defs.request_event``) and benchmark-history records
    (``$defs.bench_record``).  Raises ``KeyError`` for an unknown name so
    a typo fails loudly rather than validating against nothing.
    """
    defs = schema.get("$defs", {})
    if def_name not in defs:
        raise KeyError(
            f"schema has no $defs entry {def_name!r}; known: {sorted(defs)}"
        )
    return validate(instance, defs[def_name])
