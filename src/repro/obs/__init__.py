"""``repro.obs`` — the simulator's VTune: spans, metrics, CPI stacks.

Three pieces, designed to cost nothing when not in use:

* :class:`~repro.obs.tracer.Tracer` — nested spans on a wall-clock track
  and per-run simulated-cycle tracks, exportable as Chrome
  ``chrome://tracing`` JSON or flat JSONL.
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  log2-bucket histograms that the memory hierarchy, cores, schedulers,
  and serving loop publish into.
* :mod:`~repro.obs.cpi` — Top-down-style CPI stacks (retire / frontend /
  L1..DRAM-bound) derived from the published counters.

Activation is explicit and scoped (:func:`~repro.obs.hooks.session`)::

    from repro.obs import session, collect_cpi_stacks

    with session() as obs:
        run_experiment("fig13", config=config)
    obs.tracer.to_chrome("trace.json")
    obs.metrics.to_jsonl("metrics.jsonl")
    print(format_cpi_table(collect_cpi_stacks(obs.metrics)))

With no session active every hook in the simulator reduces to one
``is None`` branch at batch granularity — results are bit-identical and
the fast engine's throughput is unaffected (see docs/observability.md).
"""

from .critpath import (
    SEGMENT_KINDS,
    CriticalPath,
    Segment,
    aggregate_profiles,
    check_conservation,
    extract_critical_path,
    extract_paths,
    profile_records,
)
from .detect import (
    CompositionDriftDetector,
    DetectionEvent,
    MeanShiftDetector,
)
from .fleet import FleetSpan, FleetTrace, check_span_tree, merge_spans
from .ids import (
    attempt_id,
    parse_request_id,
    parse_span_id,
    request_id,
    request_of_span,
    route_id,
    slot_id,
)
from .cpi import (
    CPI_BUCKETS,
    CpiStack,
    collect_cpi_stacks,
    dense_cpi_stack,
    embedding_cpi_stack,
    format_cpi_table,
    publish_cpi_stack,
)
from .hooks import Observation, active, enabled, session
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .regress import (
    Benchmark,
    Regression,
    compare,
    load_history,
    make_record,
)
from .requests import (
    RequestLog,
    attribute_miss,
    load_request_log,
    miss_attribution,
)
from .schema import validate, validate_def
from .slo import (
    BurnAlert,
    BurnRule,
    FleetMonitor,
    SLOSpec,
    SloTimeline,
    burn_alerts,
    evaluate_slo,
    score_detections,
)
from .tracer import SIM_PID, WALL_PID, SpanEvent, Tracer
from .whatif import (
    KNOBS,
    WhatIfPrediction,
    predict,
    whatif_record,
    within_bounds,
)

__all__ = [
    "CPI_BUCKETS",
    "Benchmark",
    "BurnAlert",
    "BurnRule",
    "CompositionDriftDetector",
    "Counter",
    "CpiStack",
    "CriticalPath",
    "DetectionEvent",
    "FleetMonitor",
    "FleetSpan",
    "FleetTrace",
    "Gauge",
    "Histogram",
    "KNOBS",
    "MeanShiftDetector",
    "MetricsRegistry",
    "Observation",
    "Regression",
    "RequestLog",
    "SEGMENT_KINDS",
    "SIM_PID",
    "SLOSpec",
    "Segment",
    "SloTimeline",
    "SpanEvent",
    "Tracer",
    "WALL_PID",
    "WhatIfPrediction",
    "active",
    "aggregate_profiles",
    "attempt_id",
    "attribute_miss",
    "burn_alerts",
    "check_conservation",
    "check_span_tree",
    "collect_cpi_stacks",
    "compare",
    "dense_cpi_stack",
    "embedding_cpi_stack",
    "enabled",
    "evaluate_slo",
    "extract_critical_path",
    "extract_paths",
    "format_cpi_table",
    "load_history",
    "load_request_log",
    "make_record",
    "merge_spans",
    "miss_attribution",
    "parse_request_id",
    "parse_span_id",
    "predict",
    "profile_records",
    "publish_cpi_stack",
    "request_id",
    "request_of_span",
    "route_id",
    "score_detections",
    "session",
    "slot_id",
    "validate",
    "validate_def",
    "whatif_record",
    "within_bounds",
]
