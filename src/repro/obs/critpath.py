"""Critical-path extraction: where each request's latency actually went.

The request log says a request took 38 ms and missed its deadline; this
module says *which segment of its timeline was on the blocking chain* —
the on-node queue wait, the service time itself, the contention penalty a
noisy neighbor added, the network hops, the hedge delay the request sat
out, the failover recovery after a crash, or the retry backoff.  That is
the attribution the paper's Table 1 / fig17 argument needs at request
granularity, and the bottleneck signal the autoscaling and autotuning
layers consume.

Two extractors share one segment taxonomy (:data:`SEGMENT_KINDS`):

* **single box** (:func:`_extract_single`) — walks the lifecycle event
  stream of :mod:`repro.serving.server` / ``fastserve`` chronologically:
  ``arrive→dispatch`` is queueing, ``dispatch→complete`` is service with
  the fault/straggler/degradation multiplier carved out as ``penalty``,
  ``timeout_retry→retry_arrive`` is backoff.
* **cluster** (:func:`_extract_cluster`) — reconstructs the blocking
  chain backward from the slowest gather slot: the winning attempt's
  interval decomposes into ``network`` (two hops), on-node ``queue``,
  base ``service`` and slowdown ``penalty`` (from the ``call_ok``
  attrs the cluster records); a winner submitted by a failover charges
  the failed attempt's interval to ``recovery``; a winner submitted by
  a hedge charges the armed delay to ``hedge_wait``; the walk repeats
  until it reaches the request's arrival.

**Conservation invariant**: for every request the chronological segment
durations sum *exactly* (in float sim-ms) to ``end_ms - arrival_ms``.
The last chronological segment's duration is defined as the left-to-right
remainder ``total - sum(previous)``, so :func:`check_conservation`'s
sequential subtraction reaches exactly ``0.0`` — any residual float dust
is folded into the final segment (which may, in pathological cases, go
marginally negative; the profile aggregates are unaffected).

Aggregation (:func:`aggregate_profiles`) answers "where does p99 go":
fleet-wide per-kind breakdowns overall, over the p99 tail, and per
node/shard, exported as schema-validated ``critpath_profile`` records
(``$defs.critpath_record`` in ``tools/trace_schema.json``) and rendered
by ``tools/trace_report.py --critpath`` and the dashboard panel.

Everything here is a pure function of the logged records — deterministic
across hosts and ``--jobs``, no simulation, no randomness, no wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CRITPATH_SCHEMA_VERSION",
    "SEGMENT_KINDS",
    "CriticalPath",
    "Segment",
    "aggregate_profiles",
    "bottleneck",
    "check_conservation",
    "extract_critical_path",
    "extract_paths",
    "profile_records",
]

#: Version stamp of the exported ``critpath_profile`` record shape.
CRITPATH_SCHEMA_VERSION = 1

#: The segment taxonomy, in canonical display order.
SEGMENT_KINDS = (
    "queue",       # waiting for a core (single box) or on-node (cluster)
    "service",     # base service time, multipliers removed
    "penalty",     # service inflation: faults, stragglers, degradation
    "network",     # cluster hops of the winning attempt
    "hedge_wait",  # armed hedge delay the request sat out
    "recovery",    # a failed attempt's lifetime before failover
    "backoff",     # retry backoff between queue timeouts
    "other",       # unexplained remainder (kept, never hidden)
)


@dataclass
class Segment:
    """One chronological piece of a request's blocking chain."""

    kind: str
    dur_ms: float
    node: Optional[int] = None
    shard: Optional[int] = None
    cause: Optional[str] = None


@dataclass
class CriticalPath:
    """The reconstructed blocking chain of one request."""

    req: int
    id: str
    outcome: str
    arrival_ms: float
    end_ms: float
    segments: List[Segment] = field(default_factory=list)

    @property
    def total_ms(self) -> float:
        return self.end_ms - self.arrival_ms

    def by_kind(self) -> Dict[str, float]:
        """Segment durations summed per kind (only kinds present)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.kind] = out.get(seg.kind, 0.0) + seg.dur_ms
        return out


def check_conservation(path: CriticalPath) -> float:
    """Sequential left-to-right residual; exactly ``0.0`` when conserved.

    This is the invariant the pinned suites lock: subtracting each
    segment duration from the total in order must land on exact float
    zero, because the last segment's duration is defined as that prefix
    remainder by :func:`_seal`.
    """
    residual = path.total_ms
    for seg in path.segments:
        residual -= seg.dur_ms
    return residual


def _seal(path: CriticalPath) -> CriticalPath:
    """Enforce exact conservation by folding float dust into the tail.

    The final chronological segment's duration is *defined* as
    ``total - sum(previous)`` evaluated by the same left-to-right
    subtraction :func:`check_conservation` performs, which makes the
    invariant exact by construction rather than approximately true.
    """
    if not path.segments:
        if path.total_ms != 0.0:
            path.segments.append(Segment("other", 0.0))
        else:
            return path
    remainder = path.total_ms
    for seg in path.segments[:-1]:
        remainder -= seg.dur_ms
    path.segments[-1].dur_ms = remainder
    return path


# -- single box ---------------------------------------------------------------


def _multiplier(event: Dict[str, object]) -> float:
    """Service inflation recorded at dispatch (absent attrs count as 1)."""
    mult = 1.0
    for key in ("fault_mult", "straggler_mult", "scale"):
        value = event.get(key)
        if value is not None:
            mult *= float(value)
    return mult


def _extract_single(record: Dict[str, object]) -> CriticalPath:
    """Chronological event walk of a single-box request lifecycle."""
    arrival = float(record["arrival_ms"])
    path = CriticalPath(
        req=int(record["req"]),
        id=str(record["id"]),
        outcome=str(record["outcome"]),
        arrival_ms=arrival,
        end_ms=float(record["end_ms"]),
    )
    core = record.get("core")
    node = int(core) if core is not None else None
    cursor = arrival
    mult = 1.0

    def close(kind: str, t: float, cause: Optional[str] = None) -> None:
        nonlocal cursor
        if t > cursor:
            path.segments.append(Segment(kind, t - cursor, node=node, cause=cause))
        cursor = t

    for event in record.get("events", []):
        kind = str(event.get("kind"))
        t = float(event.get("t_ms", cursor))
        if kind in ("arrive",):
            cursor = max(cursor, t)
        elif kind == "retry_arrive":
            close("backoff", t)
        elif kind == "dispatch":
            close("queue", t)
            mult = _multiplier(event)
        elif kind == "complete":
            span = t - cursor
            base = span / mult if mult > 0 else span
            if base > 0.0:
                path.segments.append(Segment("service", base, node=node))
            if span - base != 0.0:
                path.segments.append(
                    Segment("penalty", span - base, node=node, cause="slowdown")
                )
            cursor = t
        elif kind in ("timeout_retry", "shed", "expired", "timeout"):
            # Time since the last phase change was spent waiting in (or
            # for) the queue; terminal kinds end the walk naturally.
            close("queue", t, cause=kind if kind != "timeout_retry" else None)
        # other kinds (degradation transitions etc.) are instantaneous
    if path.end_ms > cursor:
        path.segments.append(Segment("other", path.end_ms - cursor, node=node))
    return _seal(path)


# -- cluster ------------------------------------------------------------------


class _SlotLog:
    """Per-gather-slot event index of one cluster request (keyed by shard;
    the gather samples shards without replacement, so the shard IS the
    slot identity)."""

    __slots__ = ("shard", "calls", "oks", "fails", "hedges", "failovers")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.calls: List[Tuple[float, int, bool]] = []  # (t, node, hedge)
        self.oks: List[Tuple[float, int, Dict[str, object]]] = []
        self.fails: List[Tuple[float, int, Optional[str]]] = []
        self.hedges: List[Tuple[float, int, Optional[float]]] = []  # (t, node, q_ms)
        self.failovers: List[float] = []

    def resolve(self, arrival: float) -> float:
        """When this slot stopped blocking the gather: first delivery
        (later deliveries are wasted hedges), else the final failure that
        exhausted the replicas, else the arrival (no routable replica)."""
        if self.oks:
            return self.oks[0][0]
        if self.fails:
            return self.fails[-1][0]
        return arrival

    def submit_of(self, node: int) -> Optional[float]:
        """Submit time of this slot's attempt on ``node`` (the router
        never reuses a tried node within a slot, so it is unique)."""
        for t, n, _ in self.calls:
            if n == node:
                return t
        return None


def _index_slots(record: Dict[str, object]) -> Dict[int, _SlotLog]:
    slots: Dict[int, _SlotLog] = {}
    for shard in record.get("shards", []):
        slots.setdefault(int(shard), _SlotLog(int(shard)))
    for event in record.get("events", []):
        shard = event.get("shard")
        if shard is None:
            continue
        slot = slots.setdefault(int(shard), _SlotLog(int(shard)))
        kind = event.get("kind")
        t = float(event.get("t_ms", 0.0))
        if kind == "shard_call":
            slot.calls.append((t, int(event["node"]), bool(event.get("hedge"))))
        elif kind == "call_ok":
            slot.oks.append((t, int(event["node"]), event))
        elif kind == "call_failed":
            cause = event.get("cause")
            slot.fails.append(
                (t, int(event["node"]), str(cause) if cause else None)
            )
        elif kind == "hedge":
            q = event.get("q_ms")
            slot.hedges.append(
                (t, int(event["node"]), float(q) if q is not None else None)
            )
        elif kind == "failover":
            slot.failovers.append(t)
    return slots


def _attempt_segments(
    slot: _SlotLog,
    node: int,
    submit: float,
    resolve: float,
    attrs: Optional[Dict[str, object]],
    cause: Optional[str],
) -> List[Segment]:
    """Decompose one attempt interval ``[submit, resolve]``.

    With the recorded ``call_ok`` decomposition the interval splits into
    network + queue + base service + slowdown penalty (emitted in that
    canonical order; the two network hops actually bracket the on-node
    time).  A failed attempt, or an ok without attrs (older logs), is one
    opaque segment.
    """
    span = resolve - submit
    if attrs is not None and attrs.get("queue_ms") is not None:
        queue = float(attrs["queue_ms"])
        service = float(attrs.get("service_ms", 0.0))
        slow = float(attrs.get("slow") or 1.0)
        network = span - queue - service
        base = service / slow if slow > 0 else service
        out: List[Segment] = []
        if network != 0.0:
            out.append(Segment("network", network, node=node, shard=slot.shard))
        if queue != 0.0:
            out.append(Segment("queue", queue, node=node, shard=slot.shard))
        if base != 0.0:
            out.append(Segment("service", base, node=node, shard=slot.shard))
        if service - base != 0.0:
            out.append(
                Segment(
                    "penalty", service - base, node=node, shard=slot.shard,
                    cause="node_slow",
                )
            )
        return out
    if attrs is not None:
        return [Segment("service", span, node=node, shard=slot.shard)]
    return [
        Segment("recovery", span, node=node, shard=slot.shard, cause=cause)
    ]


def _explain_submission(
    slot: _SlotLog, t_submit: float, arrival: float
) -> List[Segment]:
    """Why was an attempt submitted at ``t_submit``?  Chronological
    segments covering ``[arrival, t_submit]``."""
    if t_submit <= arrival:
        return []
    if t_submit in slot.failovers:
        # The failover fired the instant its predecessor died; charge the
        # dead attempt's whole lifetime to recovery and keep walking.
        for t_fail, node_f, cause in slot.fails:
            if t_fail == t_submit:
                sub = slot.submit_of(node_f)
                if sub is None:
                    break
                return _explain_submission(slot, sub, arrival) + [
                    Segment(
                        "recovery", t_submit - sub, node=node_f,
                        shard=slot.shard, cause=cause,
                    )
                ]
    if any(t == t_submit for t, _, _ in slot.hedges):
        # The hedge timer armed when the previous attempt went out; the
        # wait between arming and firing is the hedge delay sat out.
        arming = max(
            (t for t, _, _ in slot.calls if t < t_submit), default=None
        )
        if arming is not None:
            return _explain_submission(slot, arming, arrival) + [
                Segment("hedge_wait", t_submit - arming, shard=slot.shard)
            ]
    return [Segment("other", t_submit - arrival, shard=slot.shard)]


def _extract_cluster(record: Dict[str, object]) -> CriticalPath:
    """Backward blocking-chain walk from the slowest gather slot."""
    arrival = float(record["arrival_ms"])
    path = CriticalPath(
        req=int(record["req"]),
        id=str(record["id"]),
        outcome=str(record["outcome"]),
        arrival_ms=arrival,
        end_ms=float(record["end_ms"]),
    )
    if record["outcome"] == "shed":
        return _seal(path)  # dropped at arrival: zero-length path
    slots = _index_slots(record)
    if not slots:
        return _seal(path)
    # The request finished when its last slot resolved: the critical slot
    # is the max resolver (smallest shard breaks exact-float ties).
    critical = min(
        slots.values(), key=lambda s: (-s.resolve(arrival), s.shard)
    )
    resolve = critical.resolve(arrival)
    if critical.oks:
        t_ok, node, attrs = critical.oks[0]
        cause: Optional[str] = None
    elif critical.fails:
        t_ok, node, cause = critical.fails[-1]
        attrs = None
    else:  # no routable replica existed at arrival
        return _seal(path)
    submit = critical.submit_of(node)
    if submit is None:  # defensive: a log missing its shard_call line
        path.segments.append(
            Segment("other", resolve - arrival, shard=critical.shard)
        )
        return _seal(path)
    path.segments.extend(_explain_submission(critical, submit, arrival))
    path.segments.extend(
        _attempt_segments(critical, node, submit, resolve, attrs, cause)
    )
    return _seal(path)


def extract_critical_path(record: Dict[str, object]) -> CriticalPath:
    """The blocking chain of one request-log record (either layer).

    Cluster records are recognized by their ``shards`` field; everything
    else walks the single-box lifecycle.  The returned path satisfies the
    conservation invariant exactly (see :func:`check_conservation`).
    """
    if record.get("shards") is not None:
        return _extract_cluster(record)
    return _extract_single(record)


def extract_paths(records: Sequence[Dict[str, object]]) -> List[CriticalPath]:
    """Extract every record's critical path, in record order."""
    return [extract_critical_path(rec) for rec in records]


# -- aggregation --------------------------------------------------------------


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def _accumulate(
    paths: Sequence[CriticalPath],
) -> Tuple[Dict[str, float], float]:
    segments: Dict[str, float] = {}
    total = 0.0
    for path in paths:
        total += path.total_ms
        for seg in path.segments:
            segments[seg.kind] = segments.get(seg.kind, 0.0) + seg.dur_ms
    return segments, total


def bottleneck(segments: Dict[str, float]) -> Optional[str]:
    """The dominant segment kind of a profile — the scalar signal the
    autoscaler ("queue" = add capacity) and autotuner ("hedge_wait" =
    lower the floor; "penalty" = partition the cache) key off."""
    candidates = [(dur, kind) for kind, dur in segments.items() if dur > 0]
    if not candidates:
        return None
    # Max duration; canonical order breaks ties deterministically.
    return max(
        candidates, key=lambda dk: (dk[0], -SEGMENT_KINDS.index(dk[1]))
    )[1]


def aggregate_profiles(
    paths: Sequence[CriticalPath],
    scenario: str = "",
    tail_quantile: float = 99.0,
) -> List[Dict[str, object]]:
    """Fleet-wide "where does the time go" profiles over extracted paths.

    Returns schema-valid ``critpath_profile`` records (one per scope):
    ``overall``, the latency tail at ``tail_quantile`` (requests at or
    above that percentile of end-to-end time), and one per node and per
    shard that appears on any critical path.  Each record carries the
    summed per-kind segment milliseconds and the resulting bottleneck.
    """
    profiles: List[Dict[str, object]] = []

    def profile(scope: str, subset: Sequence[CriticalPath]) -> None:
        segments, total = _accumulate(subset)
        profiles.append(
            {
                "kind": "critpath_profile",
                "schema_version": CRITPATH_SCHEMA_VERSION,
                "scenario": scenario,
                "scope": scope,
                "requests": len(subset),
                "total_ms": total,
                "segments": {k: segments[k] for k in sorted(segments)},
                "bottleneck": bottleneck(segments),
            }
        )

    profile("overall", paths)
    totals = [p.total_ms for p in paths]
    cut = _percentile(totals, tail_quantile)
    profile(
        f"tail_p{tail_quantile:g}",
        [p for p in paths if p.total_ms >= cut and p.total_ms > 0],
    )
    by_node: Dict[int, Dict[str, float]] = {}
    by_shard: Dict[int, Dict[str, float]] = {}
    node_reqs: Dict[int, int] = {}
    shard_reqs: Dict[int, int] = {}
    for path in paths:
        nodes_seen = set()
        shards_seen = set()
        for seg in path.segments:
            if seg.node is not None:
                agg = by_node.setdefault(seg.node, {})
                agg[seg.kind] = agg.get(seg.kind, 0.0) + seg.dur_ms
                nodes_seen.add(seg.node)
            if seg.shard is not None:
                agg = by_shard.setdefault(seg.shard, {})
                agg[seg.kind] = agg.get(seg.kind, 0.0) + seg.dur_ms
                shards_seen.add(seg.shard)
        for n in nodes_seen:
            node_reqs[n] = node_reqs.get(n, 0) + 1
        for s in shards_seen:
            shard_reqs[s] = shard_reqs.get(s, 0) + 1
    for node in sorted(by_node):
        segments = by_node[node]
        profiles.append(
            {
                "kind": "critpath_profile",
                "schema_version": CRITPATH_SCHEMA_VERSION,
                "scenario": scenario,
                "scope": f"node:{node}",
                "requests": node_reqs[node],
                "total_ms": sum(segments.values()),
                "segments": {k: segments[k] for k in sorted(segments)},
                "bottleneck": bottleneck(segments),
            }
        )
    for shard in sorted(by_shard):
        segments = by_shard[shard]
        profiles.append(
            {
                "kind": "critpath_profile",
                "schema_version": CRITPATH_SCHEMA_VERSION,
                "scenario": scenario,
                "scope": f"shard:{shard}",
                "requests": shard_reqs[shard],
                "total_ms": sum(segments.values()),
                "segments": {k: segments[k] for k in sorted(segments)},
                "bottleneck": bottleneck(segments),
            }
        )
    return profiles


def profile_records(
    records: Sequence[Dict[str, object]],
    scenario: str = "",
    tail_quantile: float = 99.0,
) -> List[Dict[str, object]]:
    """Extract + aggregate in one call (the emitters' entry point)."""
    return aggregate_profiles(
        extract_paths(records), scenario=scenario, tail_quantile=tail_quantile
    )
