"""The shared ``"run:req"`` id scheme linking every observability layer.

One request is identified the same way everywhere the observatory sees
it: the request-log JSONL line (``id``), the fleet span tree (root
``span_id``), and the latency-histogram exemplars all carry
``"{run}:{req}"``.  Slot (gather) and attempt spans extend the root id
with ``/g{k}`` and ``/a{seq}`` suffixes, route decisions with ``/r{seq}``.

This module is the single owner of that scheme — construction *and*
parsing — so the cluster loop, the request log, and the offline tools
(``tools/trace_report.py``, the critical-path extractor) can never drift
apart on the format.  Everything is pure string work: no simulation
state, no randomness.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "attempt_id",
    "parse_request_id",
    "parse_span_id",
    "request_id",
    "request_of_span",
    "route_id",
    "slot_id",
]


def request_id(run: int, req: int) -> str:
    """The exemplar id of request ``req`` in run ``run``: ``"run:req"``."""
    return f"{run}:{req}"


def parse_request_id(rid: str) -> Tuple[int, int]:
    """Invert :func:`request_id`; raises ``ValueError`` on malformed ids."""
    run_s, _, req_s = rid.partition(":")
    if not req_s:
        raise ValueError(f"malformed request id {rid!r}; expected 'run:req'")
    return int(run_s), int(req_s)


def slot_id(root: str, k: int) -> str:
    """The span id of gather slot ``k`` under root span ``root``."""
    return f"{root}/g{k}"


def route_id(slot: str, seq: int) -> str:
    """The span id of route decision ``seq`` under gather span ``slot``."""
    return f"{slot}/r{seq}"


def attempt_id(slot: str, seq: int) -> str:
    """The span id of attempt ``seq`` under gather span ``slot``."""
    return f"{slot}/a{seq}"


def request_of_span(span_id: str) -> str:
    """The root (request) id a fleet span id belongs to.

    Works for any depth: ``"0:17/g1/a0"`` -> ``"0:17"``; a root id maps
    to itself.
    """
    return span_id.split("/", 1)[0]


def parse_span_id(
    span_id: str,
) -> Tuple[int, int, Optional[int], Optional[str], Optional[int]]:
    """Decompose a fleet span id into ``(run, req, slot, kind, seq)``.

    ``slot`` is the gather index (None for a root id); ``kind`` is
    ``"g"`` for the gather span itself, ``"r"`` for a route decision,
    ``"a"`` for an attempt (None for a root); ``seq`` is the route or
    attempt sequence number (None for roots and gathers).  Raises
    ``ValueError`` on ids outside the scheme.
    """
    parts = span_id.split("/")
    run, req = parse_request_id(parts[0])
    if len(parts) == 1:
        return run, req, None, None, None
    if len(parts) > 3 or not parts[1].startswith("g"):
        raise ValueError(f"malformed span id {span_id!r}")
    slot = int(parts[1][1:])
    if len(parts) == 2:
        return run, req, slot, "g", None
    tail = parts[2]
    if not tail or tail[0] not in ("r", "a"):
        raise ValueError(f"malformed span id {span_id!r}")
    return run, req, slot, tail[0], int(tail[1:])
