"""Declarative SLOs: windowed compliance, error budgets, burn-rate alerts.

The request log (:mod:`repro.obs.requests`) records what happened to every
request; this module turns that stream into an *SLO verdict*.  An
:class:`SLOSpec` names an objective — "95% of requests served within the
SLA latency", "99.9% availability", "95% full-quality results" — and
:func:`evaluate_slo` grades it over rolling simulated-time windows:

* **Compliance** per window: good requests / total requests.
* **Error budget**: a spec with objective ``p`` grants a budget of
  ``(1 - p)`` bad fraction; the timeline tracks the cumulative fraction
  of that budget remaining (negative = blown).
* **Burn rate** per window: observed bad fraction divided by the allowed
  bad fraction — burn 1.0 spends the budget exactly at the sustainable
  rate, burn 10 spends it ten times too fast.
* **Multi-window burn alerts** (:class:`BurnRule`): an alert fires when
  both a short and a long trailing window burn above a threshold (the
  classic SRE page condition — fast enough to matter, sustained enough to
  be real) and resolves when the short window recovers.

The fleet half (:func:`node_window_stats`, :class:`FleetMonitor`) slices
the same log per node: every ``shard_call`` / ``call_ok`` /
``call_failed`` event is bucketed into (window, node) cells, and a pair
of :class:`~repro.obs.detect.MeanShiftDetector` instances per node watch
the error rate and mean call latency.  :func:`score_detections` then
grades the fired alerts against the :class:`repro.serving.faults.
ClusterFaultPlan` ground truth — detection precision, per-fault-class
recall, and mean time-to-detect — which is what the ``slo_observatory``
experiment reports.

All timestamps are simulated milliseconds; evaluation is pure python over
the record list, so a given log grades identically on every host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .detect import DetectionEvent, MeanShiftDetector

__all__ = [
    "BurnAlert",
    "BurnRule",
    "DEFAULT_BURN_RULES",
    "FleetMonitor",
    "SLOSpec",
    "SLO_KINDS",
    "SloTimeline",
    "WindowPoint",
    "alert_record",
    "burn_alerts",
    "burn_summary",
    "evaluate_slo",
    "node_window_stats",
    "score_detections",
    "slo_state_records",
]

#: Version stamp for exported ``slo_state`` / ``alert`` lines (validated
#: against ``$defs.slo_state`` / ``$defs.alert_event`` in
#: ``tools/trace_schema.json``).
SCHEMA_VERSION = 1

#: SLO kinds understood by :meth:`SLOSpec.is_good`.
SLO_KINDS = ("latency", "availability", "quality")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective over the request stream.

    ``objective`` is the target good fraction (0.95 = "95% of requests
    are good").  What "good" means depends on ``kind``:

    * ``latency`` — served (fully or degraded) within ``threshold_ms``
      of arrival.
    * ``availability`` — served at all (completed or degraded; shed and
      failed requests are the outage).
    * ``quality`` — completed at *full* quality, and within
      ``threshold_ms`` when one is given (the paper-grade SLA reading:
      degraded recall does not count).
    """

    name: str
    kind: str
    objective: float
    threshold_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ConfigError(
                f"unknown SLO kind {self.kind!r}; known: {SLO_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ConfigError("SLO objective must be in (0, 1)")
        if self.kind == "latency" and self.threshold_ms is None:
            raise ConfigError("latency SLOs need a threshold_ms")
        if self.threshold_ms is not None and self.threshold_ms <= 0:
            raise ConfigError("SLO latency threshold must be positive")

    @property
    def budget_fraction(self) -> float:
        """Allowed bad fraction (the error budget as a rate)."""
        return 1.0 - self.objective

    def is_good(self, record: Dict[str, object]) -> bool:
        """Whether one request record counts toward the objective."""
        outcome = record.get("outcome")
        latency = record.get("latency_ms")
        if self.kind == "availability":
            return outcome in ("completed", "degraded")
        if self.kind == "latency":
            return (
                outcome in ("completed", "degraded")
                and latency is not None
                and float(latency) <= float(self.threshold_ms)
            )
        # quality
        if outcome != "completed":
            return False
        if self.threshold_ms is None:
            return True
        return latency is not None and float(latency) <= float(self.threshold_ms)


@dataclass(frozen=True)
class WindowPoint:
    """One rolling window's grade of one SLO."""

    index: int
    t_ms: float  # window end, simulated
    good: int
    total: int
    compliance: float  # good/total; 1.0 for an empty window
    burn_rate: float  # bad fraction / allowed bad fraction; 0 when empty
    budget_remaining: float  # cumulative budget fraction left (can go < 0)


@dataclass
class SloTimeline:
    """The windowed evaluation of one SLO over one record stream."""

    spec: SLOSpec
    window_ms: float
    points: List[WindowPoint] = field(default_factory=list)

    @property
    def final_budget_remaining(self) -> float:
        return self.points[-1].budget_remaining if self.points else 1.0

    @property
    def total_good(self) -> int:
        return sum(p.good for p in self.points)

    @property
    def total(self) -> int:
        return sum(p.total for p in self.points)

    @property
    def compliance(self) -> float:
        """Whole-run compliance (1.0 with no requests)."""
        total = self.total
        return self.total_good / total if total else 1.0


@dataclass(frozen=True)
class BurnRule:
    """A multi-window burn-rate alert condition.

    Fires when the mean burn rate over the trailing ``short`` windows AND
    over the trailing ``long`` windows are both at least ``threshold``;
    resolves when the short window drops back below it.  The long window
    filters one-window blips; the short window makes recovery prompt.
    """

    name: str
    short: int
    long: int
    threshold: float

    def __post_init__(self) -> None:
        if self.short <= 0 or self.long <= 0:
            raise ConfigError("burn-rule windows must be positive")
        if self.short > self.long:
            raise ConfigError("burn-rule short window must not exceed long")
        if self.threshold <= 0:
            raise ConfigError("burn-rule threshold must be positive")


#: Page-worthy fast burn plus a slow sustained-burn ticket condition.
DEFAULT_BURN_RULES = (
    BurnRule("fast_burn", short=1, long=4, threshold=4.0),
    BurnRule("slow_burn", short=6, long=24, threshold=1.0),
)


@dataclass(frozen=True)
class BurnAlert:
    """One state transition of one burn rule on one SLO."""

    slo: str
    rule: str
    state: str  # "firing" | "resolved"
    t_ms: float
    burn_short: float
    burn_long: float

    @property
    def name(self) -> str:
        return f"{self.slo}:{self.rule}"

    @property
    def firing(self) -> bool:
        return self.state == "firing"


def _window_count(horizon_ms: float, window_ms: float) -> int:
    count = int(horizon_ms / window_ms)
    if count * window_ms < horizon_ms:
        count += 1
    return max(1, count)


def evaluate_slo(
    spec: SLOSpec,
    records: Sequence[Dict[str, object]],
    window_ms: float,
    horizon_ms: Optional[float] = None,
) -> SloTimeline:
    """Grade one SLO over a request-record stream.

    Requests are bucketed by ``end_ms`` — the moment the outcome became
    known, which is when a real SLO pipeline would observe it.
    ``horizon_ms`` (default: the last outcome time) fixes the window
    count so timelines from different scenarios align.
    """
    if window_ms <= 0:
        raise ConfigError("SLO window must be positive")
    ends = [float(r.get("end_ms", 0.0)) for r in records]
    if horizon_ms is None:
        horizon_ms = max(ends) if ends else window_ms
    count = _window_count(horizon_ms, window_ms)
    good = [0] * count
    total = [0] * count
    for record, end in zip(records, ends):
        j = min(count - 1, max(0, int(end / window_ms)))
        total[j] += 1
        if spec.is_good(record):
            good[j] += 1
    timeline = SloTimeline(spec=spec, window_ms=window_ms)
    allowed = spec.budget_fraction
    cum_bad = 0
    cum_total = 0
    for j in range(count):
        bad = total[j] - good[j]
        cum_bad += bad
        cum_total += total[j]
        compliance = good[j] / total[j] if total[j] else 1.0
        burn = ((bad / total[j]) / allowed) if total[j] else 0.0
        if cum_total:
            budget = 1.0 - (cum_bad / cum_total) / allowed
        else:
            budget = 1.0
        timeline.points.append(
            WindowPoint(
                index=j,
                t_ms=(j + 1) * window_ms,
                good=good[j],
                total=total[j],
                compliance=compliance,
                burn_rate=burn,
                budget_remaining=budget,
            )
        )
    return timeline


def burn_alerts(
    timeline: SloTimeline,
    rules: Iterable[BurnRule] = DEFAULT_BURN_RULES,
) -> List[BurnAlert]:
    """Walk a timeline through the burn rules; returns all transitions."""
    alerts: List[BurnAlert] = []
    burns = [p.burn_rate for p in timeline.points]
    for rule in rules:
        firing = False
        for j, point in enumerate(timeline.points):
            lo_s = max(0, j - rule.short + 1)
            lo_l = max(0, j - rule.long + 1)
            short = sum(burns[lo_s : j + 1]) / (j + 1 - lo_s)
            long = sum(burns[lo_l : j + 1]) / (j + 1 - lo_l)
            if not firing and short >= rule.threshold and long >= rule.threshold:
                firing = True
                alerts.append(
                    BurnAlert(
                        slo=timeline.spec.name,
                        rule=rule.name,
                        state="firing",
                        t_ms=point.t_ms,
                        burn_short=short,
                        burn_long=long,
                    )
                )
            elif firing and short < rule.threshold:
                firing = False
                alerts.append(
                    BurnAlert(
                        slo=timeline.spec.name,
                        rule=rule.name,
                        state="resolved",
                        t_ms=point.t_ms,
                        burn_short=short,
                        burn_long=long,
                    )
                )
    alerts.sort(key=lambda a: (a.t_ms, a.slo, a.rule, a.state))
    return alerts


def burn_summary(
    timeline: SloTimeline,
    fault_windows: Sequence[Tuple[str, float, float, Dict[str, object]]],
    grace_ms: float = 0.0,
) -> Dict[str, float]:
    """Mean burn rate inside vs outside the ground-truth fault windows.

    "Inside" are windows overlapping any fault interval (extended by
    ``grace_ms`` to cover detection/repair lag).  A healthy observatory
    shows ``burn_in`` well above ``burn_out`` and a ``budget_final``
    that stops falling once the faults clear.
    """
    in_burns: List[float] = []
    out_burns: List[float] = []
    for point in timeline.points:
        w_start = point.t_ms - timeline.window_ms
        overlaps = any(
            w_start < (end + grace_ms) and start < point.t_ms
            for _, start, end, _ in fault_windows
        )
        (in_burns if overlaps else out_burns).append(point.burn_rate)
    return {
        "burn_in": sum(in_burns) / len(in_burns) if in_burns else 0.0,
        "burn_out": sum(out_burns) / len(out_burns) if out_burns else 0.0,
        "budget_final": timeline.final_budget_remaining,
    }


# -- fleet: per-node telemetry and detection ---------------------------------


def node_window_stats(
    records: Sequence[Dict[str, object]],
    window_ms: float,
    horizon_ms: Optional[float] = None,
) -> List[Dict[int, Dict[str, float]]]:
    """Bucket per-request shard-call events into (window, node) cells.

    Returns one dict per window mapping node id to ``{"calls", "ok",
    "failed", "lat_sum"}`` — the raw material for per-node error-rate and
    latency series.  Events outside the horizon land in the last window.
    """
    if window_ms <= 0:
        raise ConfigError("window must be positive")
    stamps: List[Tuple[float, int, str, float]] = []
    last_t = 0.0
    for record in records:
        for event in record.get("events", ()):  # type: ignore[union-attr]
            kind = event.get("kind")
            if kind not in ("shard_call", "call_ok", "call_failed"):
                continue
            node = event.get("node")
            if node is None:
                continue
            t = float(event.get("t_ms", 0.0))
            last_t = max(last_t, t)
            lat = float(event.get("latency_ms", 0.0)) if kind == "call_ok" else 0.0
            stamps.append((t, int(node), str(kind), lat))
    if horizon_ms is None:
        horizon_ms = last_t if last_t > 0 else window_ms
    count = _window_count(horizon_ms, window_ms)
    out: List[Dict[int, Dict[str, float]]] = [{} for _ in range(count)]
    for t, node, kind, lat in stamps:
        j = min(count - 1, max(0, int(t / window_ms)))
        cell = out[j].setdefault(
            node, {"calls": 0.0, "ok": 0.0, "failed": 0.0, "lat_sum": 0.0}
        )
        if kind == "shard_call":
            cell["calls"] += 1
        elif kind == "call_ok":
            cell["ok"] += 1
            cell["lat_sum"] += lat
        else:
            cell["failed"] += 1
    return out


class FleetMonitor:
    """Per-node drift detection over windowed shard-call telemetry.

    Two detectors per node, both shift-up only: the **error rate**
    (failed / (ok + failed); a crash or partition pins it at 1.0) and the
    **mean ok-call latency** (a slow node multiplies it).  Windows where
    a node saw no finished calls carry no information and are skipped, so
    an ejected node stays in its alarm state until traffic actually
    returns and succeeds.

    :attr:`node_states` keeps one label per (window, node) for the
    dashboard health timelines: ``idle`` (no calls), ``ok``, ``warn``
    (latency alarm), ``bad`` (error alarm).
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        warmup: int = 8,
        error_threshold: float = 8.0,
        latency_threshold: float = 6.0,
    ) -> None:
        if num_nodes <= 0:
            raise ConfigError("need at least one node")
        self.num_nodes = num_nodes
        self.error_detectors = [
            MeanShiftDetector(
                f"node{n}.error_rate",
                node=n,
                warmup=warmup,
                threshold=error_threshold,
                direction="up",
                min_sigma=0.05,
                min_sigma_frac=0.0,
            )
            for n in range(num_nodes)
        ]
        self.latency_detectors = [
            MeanShiftDetector(
                f"node{n}.latency_ms",
                node=n,
                warmup=warmup,
                threshold=latency_threshold,
                direction="up",
                min_sigma=1e-6,
                min_sigma_frac=0.25,
                alpha=0.1,
            )
            for n in range(num_nodes)
        ]
        self.node_states: List[List[str]] = []

    def run(
        self,
        windows: Sequence[Dict[int, Dict[str, float]]],
        window_ms: float,
    ) -> List[DetectionEvent]:
        """Feed every (window, node) cell through the detectors.

        Returns all state transitions in time order; also fills
        :attr:`node_states`.
        """
        events: List[DetectionEvent] = []
        self.node_states = []
        for j, cells in enumerate(windows):
            t = (j + 1) * window_ms
            states: List[str] = []
            for n in range(self.num_nodes):
                cell = cells.get(n)
                finished = (cell["ok"] + cell["failed"]) if cell else 0.0
                if cell is None or finished <= 0:
                    states.append(
                        "bad"
                        if self.error_detectors[n].firing
                        else ("warn" if self.latency_detectors[n].firing else "idle")
                    )
                    continue
                err_rate = cell["failed"] / finished
                event = self.error_detectors[n].update(t, err_rate)
                if event is not None:
                    events.append(event)
                if cell["ok"] > 0:
                    mean_lat = cell["lat_sum"] / cell["ok"]
                    event = self.latency_detectors[n].update(t, mean_lat)
                    if event is not None:
                        events.append(event)
                if self.error_detectors[n].firing:
                    states.append("bad")
                elif self.latency_detectors[n].firing:
                    states.append("warn")
                else:
                    states.append("ok")
            self.node_states.append(states)
        events.sort(key=lambda e: (e.t_ms, e.signal, e.state))
        return events


def score_detections(
    events: Sequence[DetectionEvent],
    fault_windows: Sequence[Tuple[str, float, float, Dict[str, object]]],
    grace_ms: float = 0.0,
) -> Dict[str, object]:
    """Grade fired detector alerts against ground-truth fault windows.

    A fault window (named ``class:node``, e.g. ``node_crash:1``) counts
    as **detected** when an alert fired on its node inside
    ``[start, end + grace_ms]``; its time-to-detect is the first such
    alert minus the fault start.  **Precision** asks the complementary
    question of every fired alert: did it fire while *some* fault was
    active?  (During a node kill the spillover load legitimately alarms
    neighbours, so precision is fault-scoped, not node-scoped; an alert
    in a quiet period is the false positive.)
    """
    firing = [e for e in events if e.state == "firing"]
    classes: Dict[str, Dict[str, object]] = {}
    all_mttd: List[float] = []
    detected_total = 0
    for name, start, end, attrs in fault_windows:
        cls = str(name).split(":")[0]
        node = attrs.get("node")
        matches = [
            e.t_ms
            for e in firing
            if e.node == node and start <= e.t_ms <= end + grace_ms
        ]
        entry = classes.setdefault(
            cls, {"windows": 0, "detected": 0, "mttd": []}
        )
        entry["windows"] += 1  # type: ignore[operator]
        if matches:
            entry["detected"] += 1  # type: ignore[operator]
            detected_total += 1
            mttd = min(matches) - start
            entry["mttd"].append(mttd)  # type: ignore[union-attr]
            all_mttd.append(mttd)
    true_pos = sum(
        1
        for e in firing
        if any(
            start <= e.t_ms <= end + grace_ms
            for _, start, end, _ in fault_windows
        )
    )
    per_class = {
        cls: {
            "windows": entry["windows"],
            "detected": entry["detected"],
            "recall": (
                entry["detected"] / entry["windows"] if entry["windows"] else 1.0
            ),
            "mttd_ms": (
                sum(entry["mttd"]) / len(entry["mttd"])  # type: ignore[arg-type]
                if entry["mttd"]
                else None
            ),
        }
        for cls, entry in sorted(classes.items())
    }
    windows_total = len(fault_windows)
    return {
        "alerts_fired": len(firing),
        "true_positives": true_pos,
        "precision": (true_pos / len(firing)) if firing else 1.0,
        "windows_total": windows_total,
        "windows_detected": detected_total,
        "recall": (detected_total / windows_total) if windows_total else 1.0,
        "mttd_ms": (sum(all_mttd) / len(all_mttd)) if all_mttd else None,
        "classes": per_class,
    }


# -- JSONL export shapes ------------------------------------------------------


def slo_state_records(
    timeline: SloTimeline, scenario: Optional[str] = None
) -> List[Dict[str, object]]:
    """One schema-valid ``slo_state`` line per window of a timeline."""
    out: List[Dict[str, object]] = []
    for point in timeline.points:
        record: Dict[str, object] = {
            "kind": "slo_state",
            "schema_version": SCHEMA_VERSION,
            "slo": timeline.spec.name,
            "slo_kind": timeline.spec.kind,
            "objective": timeline.spec.objective,
            "t_ms": point.t_ms,
            "window_ms": timeline.window_ms,
            "good": point.good,
            "total": point.total,
            "compliance": point.compliance,
            "burn_rate": point.burn_rate,
            "budget_remaining": point.budget_remaining,
        }
        if scenario is not None:
            record["scenario"] = scenario
        out.append(record)
    return out


def alert_record(
    alert, scenario: Optional[str] = None
) -> Dict[str, object]:
    """The schema-valid ``alert`` line for a burn alert or detector event."""
    if isinstance(alert, BurnAlert):
        record: Dict[str, object] = {
            "kind": "alert",
            "schema_version": SCHEMA_VERSION,
            "source": "slo_burn",
            "name": alert.name,
            "state": alert.state,
            "t_ms": alert.t_ms,
            "node": None,
            "score": alert.burn_short,
        }
    else:  # DetectionEvent
        record = {
            "kind": "alert",
            "schema_version": SCHEMA_VERSION,
            "source": "detector",
            "name": alert.signal,
            "state": alert.state,
            "t_ms": alert.t_ms,
            "node": alert.node,
            "score": alert.score,
        }
    if scenario is not None:
        record["scenario"] = scenario
    return record
