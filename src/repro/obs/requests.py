"""Request-scoped tracing: the lifecycle of every serving request.

The serving metrics (``serving.latency_ms`` and friends) answer *how bad*
the tail is; this module answers *why*.  When a :class:`RequestLog` is
attached to the active observation, :func:`repro.serving.server.
simulate_server` records, per logical request, the full lifecycle —
arrival, queue wait, retries with their backoff, the core it ran on, the
degradation scheme in effect at dispatch, every fault window overlapping
its lifetime, and its terminal outcome with a cause — and links each
request to a Chrome-trace span through a stable *exemplar id* so a
histogram bucket can be traced back to the concrete offending requests.

Everything recorded is **simulated time only** — no wall clocks — so the
export is byte-identical for a given seed and fault plan regardless of
host, run count, or ``--jobs`` parallelism (request-logged CLI runs
serialize in-process like all observed runs).  With no log attached the
serving loop takes a single ``is None`` branch per event: results and
throughput are untouched, matching the zero-cost contract of
:mod:`repro.obs.hooks`.

Offline consumers: ``tools/trace_report.py --requests`` prints slowest-N
request timelines and the SLA-miss attribution table;
``tools/obs_dashboard.py`` renders the attribution into the HTML report.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .ids import request_id

__all__ = [
    "MISS_CAUSES",
    "RequestLog",
    "RunLog",
    "attribute_miss",
    "load_request_log",
    "miss_attribution",
]

#: Version stamp written into every exported line; bump when the record
#: shape changes (validated against ``$defs.request_event`` in
#: ``tools/trace_schema.json``).
SCHEMA_VERSION = 1

#: Attribution buckets for requests that missed their SLA, most specific
#: first (see :func:`attribute_miss`).  The cluster layer adds four
#: fleet-level causes: ``partition``/``node_fault`` cover requests that
#: failed or went late because a node was unreachable or crashed, and
#: ``failover``/``hedge_wasted`` cover requests whose lateness traces to
#: the recovery machinery itself (a failed-over shard call, a hedge that
#: lost the race).
MISS_CAUSES = (
    "shed_queue_full",     # admission control dropped it at arrival
    "expired_on_arrival",  # deadline already passed when it (re-)arrived
    "queue_timeout",       # waited out its queue timeout budget
    "partition",           # a shard call sat out a network partition
    "node_fault",          # a node crash/kill hit one of its shard calls
    "failover",            # completed late after failing over replicas
    "hedge_wasted",        # completed late; a hedge raced and lost
    "contention",          # completed late inside a co-tenant window
    "fault",               # completed late with a fault window overlapping
    "retry_backoff",       # completed late after queue-timeout retries
    "queueing",            # completed late, wait dominated service
    "slow_service",        # completed late, service dominated wait
)


class RunLog:
    """Per-request lifecycle records of **one** serving simulation.

    Created by :meth:`RequestLog.start_run`; the serving loop feeds it
    incremental :meth:`event` calls and one :meth:`finish` /
    :meth:`finish_fast` call with the final per-request arrays.  All
    timestamps are simulated milliseconds.
    """

    def __init__(
        self,
        log: "RequestLog",
        index: int,
        label: str,
        num_cores: int,
        num_requests: int,
        deadline_ms: Optional[float],
    ) -> None:
        self.log = log
        self.index = index
        self.label = label
        self.num_cores = num_cores
        self.num_requests = num_requests
        self.deadline_ms = deadline_ms
        self.records: List[Dict[str, object]] = []
        self._events: List[List[Dict[str, object]]] = [
            [] for _ in range(num_requests)
        ]

    def exemplar_id(self, req: int) -> str:
        """The stable id linking request ``req`` across log, spans, and
        histogram exemplars (see :mod:`repro.obs.ids`)."""
        return request_id(self.index, req)

    def event(self, req: int, kind: str, t_ms: float, **attrs: object) -> None:
        """Record one lifecycle event of request ``req``."""
        entry: Dict[str, object] = {"kind": kind, "t_ms": float(t_ms)}
        if attrs:
            entry.update(attrs)
        self._events[req].append(entry)

    # -- finalization --------------------------------------------------------

    def finish_fast(self, arrivals, starts, services, core_ids, tracer=None) -> None:
        """Build records for a fast-path run (every request completes)."""
        n = int(arrivals.size)
        for i in range(n):
            arrival = float(arrivals[i])
            start = float(starts[i])
            service = float(services[i])
            self._events[i] = [
                {"kind": "arrive", "t_ms": arrival},
                {"kind": "dispatch", "t_ms": start, "core": int(core_ids[i])},
                {"kind": "complete", "t_ms": start + service},
            ]
            self.records.append(
                self._record(
                    req=i,
                    injected=False,
                    arrival_ms=arrival,
                    outcome="completed",
                    cause=None,
                    retries=0,
                    backoff_ms=0.0,
                    wait_ms=start - arrival,
                    service_ms=service,
                    end_ms=start + service,
                    core=int(core_ids[i]),
                    level=None,
                    scheme=None,
                    fault_windows=[],
                )
            )
        self._seal(tracer)

    def finish(
        self,
        *,
        arrivals,
        injected,
        outcomes,
        retry_counts,
        starts,
        services,
        core_of,
        plan=None,
        tracer=None,
    ) -> None:
        """Build records for a resilient-path run from the loop's arrays.

        ``outcomes`` uses the codes of :mod:`repro.serving.server`
        (0 completed / 1 shed / 2 timed out); causes and retry timelines
        come from the incremental :meth:`event` stream.
        """
        from ..serving.server import OUTCOME_NAMES

        windows = plan.windows() if plan is not None and not plan.is_empty else []
        n = int(arrivals.size)
        for i in range(n):
            events = self._events[i]
            arrival = float(arrivals[i])
            outcome = OUTCOME_NAMES[int(outcomes[i])]
            retries = int(retry_counts[i])
            backoff = sum(
                float(e.get("backoff_ms", 0.0))
                for e in events
                if e["kind"] == "timeout_retry"
            )
            cause = None
            for e in events:
                if e["kind"] == "shed":
                    cause = "queue_full"
                elif e["kind"] == "expired":
                    cause = "deadline_expired"
                elif e["kind"] == "timeout":
                    cause = "queue_timeout"
            dispatch = next(
                (e for e in events if e["kind"] == "dispatch"), None
            )
            if outcome == "completed":
                start = float(starts[i])
                service = float(services[i])
                wait: Optional[float] = start - arrival
                end = start + service
                core: Optional[int] = int(core_of[i])
                cause = None
            else:
                wait, service, core = None, None, None
                end = float(events[-1]["t_ms"]) if events else arrival
            self.records.append(
                self._record(
                    req=i,
                    injected=bool(injected[i]) if injected is not None else False,
                    arrival_ms=arrival,
                    outcome=outcome,
                    cause=cause,
                    retries=retries,
                    backoff_ms=backoff,
                    wait_ms=wait,
                    service_ms=service,
                    end_ms=end,
                    core=core,
                    level=dispatch.get("level") if dispatch else None,
                    scheme=dispatch.get("scheme") if dispatch else None,
                    fault_windows=self._overlapping(windows, arrival, end, core),
                )
            )
        self._seal(tracer)

    @staticmethod
    def _overlapping(
        windows: List[Tuple[str, float, float, Dict[str, object]]],
        start_ms: float,
        end_ms: float,
        core: Optional[int],
    ) -> List[str]:
        """Names of fault windows overlapping ``[start_ms, end_ms]``.

        Core-scoped faults (slowdowns, failures) only count when they hit
        the request's assigned core; fleet-wide windows always count.
        """
        out = []
        for name, w_start, w_end, attrs in windows:
            fault_core = attrs.get("core")
            if fault_core is not None and core is not None and fault_core != core:
                continue
            if w_start <= end_ms and start_ms <= w_end:
                out.append(name)
        return out

    def _record(
        self,
        *,
        req: int,
        injected: bool,
        arrival_ms: float,
        outcome: str,
        cause: Optional[str],
        retries: int,
        backoff_ms: float,
        wait_ms: Optional[float],
        service_ms: Optional[float],
        end_ms: float,
        core: Optional[int],
        level: Optional[int],
        scheme: Optional[str],
        fault_windows: List[str],
    ) -> Dict[str, object]:
        deadline_met: Optional[bool] = None
        if self.deadline_ms is not None:
            deadline_met = (
                outcome == "completed"
                and end_ms <= arrival_ms + self.deadline_ms
            )
        return {
            "kind": "request",
            "schema_version": SCHEMA_VERSION,
            "run": self.index,
            "label": self.label,
            "req": req,
            "id": self.exemplar_id(req),
            "injected": injected,
            "arrival_ms": arrival_ms,
            "deadline_ms": self.deadline_ms,
            "outcome": outcome,
            "cause": cause,
            "retries": retries,
            "backoff_ms": backoff_ms,
            "wait_ms": wait_ms,
            "service_ms": service_ms,
            "latency_ms": (end_ms - arrival_ms) if outcome == "completed" else None,
            "end_ms": end_ms,
            "core": core,
            "degradation_level": level,
            "scheme": scheme,
            "fault_windows": fault_windows,
            "deadline_met": deadline_met,
            "events": self._events[req],
        }

    def add_record(
        self,
        *,
        req: int,
        arrival_ms: float,
        outcome: str,
        end_ms: float,
        cause: Optional[str] = None,
        retries: int = 0,
        backoff_ms: float = 0.0,
        wait_ms: Optional[float] = None,
        service_ms: Optional[float] = None,
        core: Optional[int] = None,
        level: Optional[int] = None,
        scheme: Optional[str] = None,
        fault_windows: Optional[List[str]] = None,
        injected: bool = False,
        **extra: object,
    ) -> Dict[str, object]:
        """Append one request record built by an external simulator.

        The cluster loop (:mod:`repro.serving.cluster`) uses this instead
        of :meth:`finish`/:meth:`finish_fast` because its per-request
        shape (shard calls, failovers, hedges) does not map onto the
        single-box arrays.  ``extra`` keys are merged into the record
        verbatim (e.g. ``node``, ``shards``, ``failovers``, ``hedges``,
        ``hedges_wasted``); the schema allows additional fields.  Records
        must be added in request order; call :meth:`finish_custom` once
        at the end.
        """
        record = self._record(
            req=req,
            injected=injected,
            arrival_ms=arrival_ms,
            outcome=outcome,
            cause=cause,
            retries=retries,
            backoff_ms=backoff_ms,
            wait_ms=wait_ms,
            service_ms=service_ms,
            end_ms=end_ms,
            core=core,
            level=level,
            scheme=scheme,
            fault_windows=list(fault_windows) if fault_windows else [],
        )
        if outcome == "degraded":
            # A partial result still has an end-to-end latency.
            record["latency_ms"] = end_ms - arrival_ms
        record.update(extra)
        self.records.append(record)
        return record

    def finish_custom(self, tracer=None) -> None:
        """Seal a run whose records came through :meth:`add_record`."""
        self._seal(tracer)

    def completed_ids(self) -> List[str]:
        """Exemplar ids of completed requests, in arrival order (aligned
        with ``ServerResult.latencies_ms``)."""
        return [
            str(r["id"]) for r in self.records if r["outcome"] == "completed"
        ]

    def _seal(self, tracer) -> None:
        """Apply the log-wide bound and emit one linked span per request."""
        kept = self.log._admit(len(self.records))
        if kept < len(self.records):
            del self.records[kept:]
            del self._events[kept:]
        if tracer is None or not self.records:
            return
        tid = tracer.new_sim_track(f"serving.requests:{self.label} (ms)")
        for record in self.records:
            tracer.add_sim_span(
                f"req[{record['req']}]",
                "serving.request",
                float(record["arrival_ms"]),
                float(record["end_ms"]) - float(record["arrival_ms"]),
                tid=tid,
                args={
                    "id": record["id"],
                    "outcome": record["outcome"],
                    "cause": record["cause"],
                    "core": record["core"],
                    "retries": record["retries"],
                },
            )


class RequestLog:
    """All request records of one observed session, bounded like the tracer.

    Attach one to an :class:`repro.obs.hooks.Observation` (the runner's
    ``--request-log`` flag does this) and every serving simulation in the
    session appends one :class:`RunLog`.  Once ``max_requests`` records
    are held, further requests are counted in :attr:`dropped` but not
    kept, so a truncated log is never mistaken for a complete one.
    """

    def __init__(self, max_requests: int = 1_000_000) -> None:
        self.runs: List[RunLog] = []
        self.max_requests = max_requests
        self.dropped = 0
        self._kept = 0

    def start_run(
        self,
        label: Optional[str] = None,
        num_cores: int = 0,
        num_requests: int = 0,
        deadline_ms: Optional[float] = None,
    ) -> RunLog:
        """Open the log of one serving simulation."""
        run = RunLog(
            log=self,
            index=len(self.runs),
            label=label if label else f"run{len(self.runs)}",
            num_cores=num_cores,
            num_requests=num_requests,
            deadline_ms=deadline_ms,
        )
        self.runs.append(run)
        return run

    def _admit(self, count: int) -> int:
        """Budget ``count`` new records; returns how many may be kept."""
        kept = max(0, min(count, self.max_requests - self._kept))
        self._kept += kept
        self.dropped += count - kept
        return kept

    @property
    def num_requests(self) -> int:
        """Total request records held (drops excluded)."""
        return self._kept

    def records(self) -> List[Dict[str, object]]:
        """Every request record across runs, in run/arrival order."""
        out: List[Dict[str, object]] = []
        for run in self.runs:
            out.extend(run.records)
        return out

    def meta(self) -> Dict[str, object]:
        """The header record summarizing the whole log."""
        return {
            "kind": "request_log_meta",
            "schema_version": SCHEMA_VERSION,
            "runs": len(self.runs),
            "requests": self.num_requests,
            "dropped": self.dropped,
        }

    def to_jsonl(self, path) -> int:
        """Write the meta header plus one line per request; returns the
        request count.  Deterministic: simulated time only, fixed key
        order."""
        with open(path, "w") as fh:
            fh.write(json.dumps(self.meta()) + "\n")
            for record in self.records():
                fh.write(json.dumps(record) + "\n")
        return self.num_requests


def load_request_log(path) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Read a request-log JSONL export: ``(meta, request_records)``."""
    meta: Dict[str, object] = {}
    records: List[Dict[str, object]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "request_log_meta":
                meta = rec
            else:
                records.append(rec)
    return meta, records


def attribute_miss(record: Dict[str, object]) -> Optional[str]:
    """Primary cause of one request's SLA miss, or None if it didn't miss.

    A request "missed" when it did not complete (cluster runs count
    ``degraded`` partial results and ``failed`` requests here), or
    completed past its deadline.  Causes are checked most-specific first
    (see :data:`MISS_CAUSES`): terminal causes from the admission
    machinery win outright; fleet-level causes (partition, node fault,
    failover, wasted hedge) explain a late completion before the
    single-box ones; an overlapping fault window explains the miss before
    retries, and queueing before slow service.
    """
    outcome = record.get("outcome")
    if outcome == "shed":
        return "shed_queue_full"
    if outcome == "timed_out":
        if record.get("cause") == "deadline_expired":
            return "expired_on_arrival"
        return "queue_timeout"
    if outcome in ("failed", "degraded"):
        # Cluster outcomes: the request lost shard calls it never
        # recovered.  The recorded cause says what took them out.
        if record.get("cause") == "partition":
            return "partition"
        return "node_fault"
    if record.get("deadline_met") is False:
        if record.get("cause") == "partition":
            return "partition"
        if record.get("cause") == "node_fault":
            return "node_fault"
        if record.get("failovers"):
            return "failover"
        if record.get("hedges_wasted"):
            return "hedge_wasted"
        windows = record.get("fault_windows") or []
        # Tenant windows (named ``tenant_<kind>:<name>`` by the tenancy
        # layer) are contention, not faults: nothing broke, a neighbor
        # squeezed the shared LLC/DRAM.  More specific than plain "fault".
        if any(str(w).startswith("tenant") for w in windows):
            return "contention"
        if windows:
            return "fault"
        if record.get("retries"):
            return "retry_backoff"
        wait = record.get("wait_ms") or 0.0
        service = record.get("service_ms") or 0.0
        return "queueing" if wait > service else "slow_service"
    return None


def miss_attribution(
    records: List[Dict[str, object]],
) -> Dict[str, int]:
    """SLA-miss cause -> request count over a record list.

    Only causes that occurred appear; an empty dict means every request
    met its deadline (or no deadline was configured).
    """
    out: Dict[str, int] = {}
    for record in records:
        cause = attribute_miss(record)
        if cause is not None:
            out[cause] = out.get(cause, 0) + 1
    return {cause: out[cause] for cause in MISS_CAUSES if cause in out}
