"""Nested spans on wall-clock and simulated-time tracks, Chrome-exportable.

The tracer is the repro's VTune timeline.  It records two kinds of spans:

* **wall spans** — real elapsed time of orchestration code (an experiment,
  a serving sweep), opened with the :meth:`Tracer.span` context manager and
  timed with ``time.perf_counter_ns``;
* **sim spans** — intervals measured in *simulated core cycles* (a batch,
  an inference stage, an SMT overlap region), recorded after the fact with
  :meth:`Tracer.add_sim_span` since simulated time is known exactly.

Exports:

* :meth:`Tracer.to_chrome` writes Chrome's Trace Event JSON (load it at
  ``chrome://tracing`` or https://ui.perfetto.dev).  Wall spans live under
  pid 1 ("wall"), sim spans under pid 2 ("sim"); the sim track's "µs" are
  core cycles.  Each independent simulated timeline (one engine run, one
  serving simulation) gets its own tid via :meth:`new_sim_track`, since
  every run starts its core clock at zero.
* :meth:`Tracer.to_jsonl` writes the same events as a flat JSONL log for
  ad-hoc grepping / pandas loading.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["SpanEvent", "Tracer", "WALL_PID", "SIM_PID"]

#: Chrome-trace process ids for the two time domains.
WALL_PID = 1
SIM_PID = 2


@dataclass
class SpanEvent:
    """One completed span ("X" phase in the Chrome trace event format)."""

    name: str
    category: str
    ts: float  # µs on the wall track, core cycles on the sim track
    dur: float
    pid: int = WALL_PID
    tid: int = 0
    args: Dict[str, object] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, object]:
        """Chrome Trace Event Format dict (complete event)."""
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class Tracer:
    """Collects spans; bounded so a runaway run cannot exhaust memory.

    Once ``max_events`` spans are stored, further spans are counted in
    :attr:`dropped` but not kept — exports report the drop so a truncated
    trace is never mistaken for a complete one.
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        self.events: List[SpanEvent] = []
        self.max_events = max_events
        self.dropped = 0
        self._wall_stack: List[str] = []
        self._next_sim_tid = 0
        self._epoch_ns = time.perf_counter_ns()

    # -- recording ----------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter_ns() - self._epoch_ns) / 1000.0

    def _add(self, event: SpanEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    @contextmanager
    def span(self, name: str, category: str = "wall", **args: object) -> Iterator[None]:
        """Time a wall-clock span around a code block (nestable)."""
        start = self._now_us()
        self._wall_stack.append(name)
        depth = len(self._wall_stack)
        try:
            yield
        finally:
            self._wall_stack.pop()
            end = self._now_us()
            span_args = dict(args)
            span_args["depth"] = depth
            self._add(
                SpanEvent(
                    name=name,
                    category=category,
                    ts=start,
                    dur=end - start,
                    pid=WALL_PID,
                    tid=0,
                    args=span_args,
                )
            )

    def new_sim_track(self, label: str = "") -> int:
        """Allocate a tid for one independent simulated timeline."""
        self._next_sim_tid += 1
        if label:
            self._add(
                SpanEvent(
                    name=f"track:{label}",
                    category="sim.meta",
                    ts=0.0,
                    dur=0.0,
                    pid=SIM_PID,
                    tid=self._next_sim_tid,
                )
            )
        return self._next_sim_tid

    def add_sim_span(
        self,
        name: str,
        category: str,
        start_cycles: float,
        dur_cycles: float,
        tid: int = 0,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record one simulated-time span (cycles are the track's 'µs')."""
        self._add(
            SpanEvent(
                name=name,
                category=category,
                ts=float(start_cycles),
                dur=float(dur_cycles),
                pid=SIM_PID,
                tid=tid,
                args=dict(args) if args else {},
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def find(self, name: str) -> List[SpanEvent]:
        """Every recorded span with the given name."""
        return [e for e in self.events if e.name == name]

    # -- export -------------------------------------------------------------

    def chrome_dict(self) -> Dict[str, object]:
        """The full Chrome Trace Event JSON object."""
        trace_events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": WALL_PID,
                "tid": 0,
                "args": {"name": "wall (µs)"},
            },
            {
                "name": "process_name",
                "ph": "M",
                "pid": SIM_PID,
                "tid": 0,
                "args": {"name": "sim (core cycles)"},
            },
            # Drop accounting as an in-band metadata event: viewers that
            # never surface otherData still show whether the trace is
            # complete.
            {
                "name": "tracer_stats",
                "ph": "M",
                "pid": WALL_PID,
                "tid": 0,
                "args": {
                    "recorded_events": len(self.events),
                    "dropped_events": self.dropped,
                    "max_events": self.max_events,
                },
            },
        ]
        trace_events.extend(e.to_chrome() for e in self.events)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs",
                "dropped_events": self.dropped,
            },
        }

    def to_chrome(self, path) -> int:
        """Write the Chrome trace JSON; returns the event count written."""
        payload = self.chrome_dict()
        with open(path, "w") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        return len(self.events)

    def to_jsonl(self, path) -> int:
        """Write spans as flat JSONL (one object per span, field order fixed).

        A leading metadata line carries the drop counter, mirroring the
        Chrome export's ``otherData`` — a truncated JSONL log declares
        itself truncated.
        """
        with open(path, "w") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "trace_meta",
                        "recorded_events": len(self.events),
                        "dropped_events": self.dropped,
                        "max_events": self.max_events,
                    }
                )
                + "\n"
            )
            for event in self.events:
                fh.write(
                    json.dumps(
                        {
                            "name": event.name,
                            "cat": event.category,
                            "track": "sim" if event.pid == SIM_PID else "wall",
                            "tid": event.tid,
                            "ts": event.ts,
                            "dur": event.dur,
                            "args": event.args,
                        }
                    )
                    + "\n"
                )
        return len(self.events)
