"""Online drift detectors over windowed telemetry series.

The observatory's alerting has two kinds of signal: SLO burn rates
(:mod:`repro.obs.slo`), which say *the service is out of budget*, and the
drift detectors here, which say *something changed* — a node's error rate
jumped, its call latency shifted, the CPI-stack composition tilted from
retire-bound to DRAM-bound, the SLA-miss mix moved from queueing to
partitions.  Both feed the same alert stream.

Two detector shapes cover the telemetry the simulator emits:

* :class:`MeanShiftDetector` — a scalar series (error rate, mean call
  latency, p95).  Keeps a reference mean/variance learned over a warmup
  prefix, then scores each new window by its z-distance from the
  reference; crossing ``threshold`` fires, falling back below the
  hysteresis band resolves.  While firing the reference is frozen so a
  long fault cannot teach the detector that broken is normal.
* :class:`CompositionDriftDetector` — a categorical mix that sums to ~1
  (CPI-stack fractions from :class:`repro.obs.cpi.CpiStack`, the
  miss-attribution mix from :func:`repro.obs.requests.miss_attribution`).
  Scores the L1 distance between the current mix and the reference mix;
  same fire/resolve hysteresis.

Everything is pure python, allocation-light, and deterministic: the event
sequence produced by a detector depends only on the value sequence fed to
it.  This is the interface the noisy-neighbor work (ROADMAP item 3) will
reuse: detecting an adversarial co-tenant "purely from the obs layer" is
exactly a CompositionDriftDetector on the CPI stack plus a
MeanShiftDetector on the miss rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigError

__all__ = [
    "CompositionDriftDetector",
    "DetectionEvent",
    "Detector",
    "MeanShiftDetector",
]

#: Alert states a detector event can carry.
DETECTOR_STATES = ("firing", "resolved")


@dataclass(frozen=True)
class DetectionEvent:
    """One state transition of one detector, in simulated time.

    ``score`` is the detector's distance measure at the transition (the
    z-score for a mean shift, the L1 distance for a composition drift);
    ``value`` is the raw observation that triggered it.
    """

    t_ms: float
    signal: str
    state: str  # "firing" | "resolved"
    value: float
    score: float
    node: Optional[int] = None

    @property
    def firing(self) -> bool:
        return self.state == "firing"


class Detector:
    """Base class: feed windowed observations, collect state transitions.

    Subclasses implement :meth:`update`; callers drive it once per
    simulated-time window (skipping windows with no signal, e.g. a node
    that received no calls) and collect the returned events.  ``firing``
    exposes the current state for timeline rendering.
    """

    def __init__(self, signal: str, node: Optional[int] = None) -> None:
        self.signal = signal
        self.node = node
        self.firing = False
        self.events: List[DetectionEvent] = []

    def update(self, t_ms: float, value) -> Optional[DetectionEvent]:
        raise NotImplementedError

    def _transition(
        self, t_ms: float, state: str, value: float, score: float
    ) -> DetectionEvent:
        self.firing = state == "firing"
        event = DetectionEvent(
            t_ms=float(t_ms),
            signal=self.signal,
            state=state,
            value=float(value),
            score=float(score),
            node=self.node,
        )
        self.events.append(event)
        return event


class MeanShiftDetector(Detector):
    """Z-score shift detection on a scalar windowed series.

    The first ``warmup`` observations only build the reference (no
    events can fire); after that each value is scored as
    ``z = (x - mean) / max(sigma, min_sigma, min_sigma_frac * |mean|)``.
    ``|z| >= threshold`` (direction-gated) fires; ``|z| <= threshold *
    resolve_frac`` resolves.  While healthy the reference tracks slow
    legitimate change with an EWMA of rate ``alpha``; while firing it is
    frozen, so recovery is judged against the pre-fault baseline.

    The sigma floors matter for near-constant baselines: a healthy node's
    error rate is identically 0.0, so without a floor the first failed
    call would divide by zero variance.
    """

    def __init__(
        self,
        signal: str,
        *,
        node: Optional[int] = None,
        warmup: int = 8,
        threshold: float = 4.0,
        resolve_frac: float = 0.5,
        min_sigma: float = 1e-3,
        min_sigma_frac: float = 0.05,
        alpha: float = 0.05,
        direction: str = "both",
    ) -> None:
        super().__init__(signal, node)
        if warmup < 2:
            raise ConfigError("mean-shift warmup needs at least 2 windows")
        if threshold <= 0:
            raise ConfigError("mean-shift threshold must be positive")
        if not 0.0 <= resolve_frac <= 1.0:
            raise ConfigError("resolve fraction must be in [0, 1]")
        if direction not in ("both", "up", "down"):
            raise ConfigError("direction must be 'both', 'up', or 'down'")
        self.warmup = warmup
        self.threshold = threshold
        self.resolve_frac = resolve_frac
        self.min_sigma = min_sigma
        self.min_sigma_frac = min_sigma_frac
        self.alpha = alpha
        self.direction = direction
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0  # Welford sum of squared deviations (warmup)
        self._var = 0.0

    def _sigma(self) -> float:
        sigma = self._var ** 0.5
        return max(sigma, self.min_sigma, self.min_sigma_frac * abs(self._mean))

    def update(self, t_ms: float, value: float) -> Optional[DetectionEvent]:
        """Score one window's observation; returns a transition or None."""
        x = float(value)
        self._count += 1
        if self._count <= self.warmup:
            delta = x - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (x - self._mean)
            if self._count == self.warmup:
                self._var = self._m2 / max(1, self.warmup - 1)
            return None
        z = (x - self._mean) / self._sigma()
        if self.direction == "up":
            score = z
        elif self.direction == "down":
            score = -z
        else:
            score = abs(z)
        if not self.firing:
            if score >= self.threshold:
                return self._transition(t_ms, "firing", x, score)
            # Healthy: let the reference drift slowly toward the data.
            self._mean += self.alpha * (x - self._mean)
            dev = x - self._mean
            self._var += self.alpha * (dev * dev - self._var)
            return None
        if score <= self.threshold * self.resolve_frac:
            return self._transition(t_ms, "resolved", x, score)
        return None


class CompositionDriftDetector(Detector):
    """L1 drift detection on a categorical composition (mix of fractions).

    Feed it dict observations — CPI-stack bucket fractions, the
    miss-attribution cause mix — each normalized internally to sum to 1.
    The score is half the L1 distance to the reference mix (total
    variation distance, in [0, 1]): 0.25 means a quarter of the mass
    moved buckets.  Reference handling mirrors
    :class:`MeanShiftDetector`: averaged over ``warmup`` windows, EWMA
    while healthy, frozen while firing.
    """

    def __init__(
        self,
        signal: str,
        *,
        node: Optional[int] = None,
        warmup: int = 4,
        threshold: float = 0.25,
        resolve_frac: float = 0.5,
        alpha: float = 0.05,
    ) -> None:
        super().__init__(signal, node)
        if warmup < 1:
            raise ConfigError("composition warmup needs at least 1 window")
        if not 0.0 < threshold <= 1.0:
            raise ConfigError("composition threshold must be in (0, 1]")
        if not 0.0 <= resolve_frac <= 1.0:
            raise ConfigError("resolve fraction must be in [0, 1]")
        self.warmup = warmup
        self.threshold = threshold
        self.resolve_frac = resolve_frac
        self.alpha = alpha
        self._count = 0
        self._ref: Dict[str, float] = {}

    @staticmethod
    def _normalize(mix: Dict[str, float]) -> Dict[str, float]:
        total = sum(max(0.0, float(v)) for v in mix.values())
        if total <= 0.0:
            return {}
        return {k: max(0.0, float(v)) / total for k, v in mix.items()}

    def _distance(self, mix: Dict[str, float]) -> float:
        keys = set(self._ref) | set(mix)
        l1 = sum(abs(self._ref.get(k, 0.0) - mix.get(k, 0.0)) for k in keys)
        return 0.5 * l1

    def update(
        self, t_ms: float, mix: Dict[str, float]
    ) -> Optional[DetectionEvent]:
        """Score one window's composition; returns a transition or None."""
        norm = self._normalize(mix)
        if not norm:  # no mass this window: no information
            return None
        self._count += 1
        if self._count <= self.warmup:
            w = 1.0 / self._count
            keys = set(self._ref) | set(norm)
            self._ref = {
                k: (1.0 - w) * self._ref.get(k, 0.0) + w * norm.get(k, 0.0)
                for k in keys
            }
            return None
        dist = self._distance(norm)
        if not self.firing:
            if dist >= self.threshold:
                return self._transition(t_ms, "firing", dist, dist)
            keys = set(self._ref) | set(norm)
            self._ref = {
                k: (1.0 - self.alpha) * self._ref.get(k, 0.0)
                + self.alpha * norm.get(k, 0.0)
                for k in keys
            }
            return None
        if dist <= self.threshold * self.resolve_frac:
            return self._transition(t_ms, "resolved", dist, dist)
        return None
