"""Deterministic performance-regression gate over a benchmark history.

``tools/bench_all.py`` appends one schema-versioned record per run to
``BENCH_history.jsonl`` (the repo's perf trajectory); this module decides
whether the newest record *regressed* relative to the last accepted one.
The comparison is deliberately boring and deterministic:

* every benchmark value entering a record is the **median of K repeats**
  (:func:`median`) — the median, unlike best-of-N, is monotone under a
  real slowdown yet robust to one bad repeat;
* a benchmark regresses only when it moved in its *worse* direction
  (``direction`` is ``"higher"``-is-better or ``"lower"``-is-better) by
  more than a **relative threshold** of the baseline *and* by more than
  its absolute **noise floor** (recorded per benchmark, in its own unit)
  — so a 0.01 ms wobble on a 0.05 ms p50 never trips a 20 % gate;
* benchmarks are split by ``kind``: ``"sim"`` values are exact simulator
  outputs (identical on any host — gate strictly), ``"wall"`` values are
  host-dependent wall-clock throughputs (gate only when comparing records
  from the same machine, see ``tools/bench_gate.py --include-wall``).

Records are plain dicts validated against ``$defs.bench_record`` in
``tools/trace_schema.json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError

__all__ = [
    "Benchmark",
    "Regression",
    "append_record",
    "compare",
    "format_regressions",
    "last_record",
    "load_history",
    "make_record",
    "median",
]

#: Version stamp of the bench-record line format.
SCHEMA_VERSION = 1

#: Directions a benchmark value can prefer.
DIRECTIONS = ("higher", "lower")

#: Benchmark kinds: exact simulator outputs vs host wall-clock.
KINDS = ("sim", "wall")


@dataclass(frozen=True)
class Benchmark:
    """One measured benchmark value entering a record.

    ``noise_floor`` is an absolute bound (same unit as ``value``) below
    which a delta is considered measurement noise; deterministic sim
    metrics use 0.0.
    """

    name: str
    value: float
    unit: str
    direction: str = "higher"
    noise_floor: float = 0.0
    kind: str = "sim"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ConfigError(
                f"benchmark direction must be one of {DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        if self.kind not in KINDS:
            raise ConfigError(
                f"benchmark kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.noise_floor < 0:
            raise ConfigError("noise floor must be non-negative")


@dataclass(frozen=True)
class Regression:
    """One gated benchmark that moved past its thresholds."""

    name: str
    baseline: float
    candidate: float
    delta_frac: float  # worseness as a fraction of the baseline, > 0
    unit: str
    direction: str

    def describe(self) -> str:
        """The gate-failure line: name, values, and delta."""
        return (
            f"REGRESSION {self.name}: {self.baseline:g} -> "
            f"{self.candidate:g} {self.unit} "
            f"({self.delta_frac * 100.0:+.1f}% worse)"
        )


def median(values: Sequence[float]) -> float:
    """Median of K repeats (even K averages the middle pair)."""
    if not values:
        raise ConfigError("median of no repeats")
    ordered = sorted(float(v) for v in values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def make_record(
    mode: str,
    repeats: int,
    benchmarks: Sequence[Benchmark],
    host: Optional[Dict[str, str]] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble one schema-versioned history record."""
    if repeats < 1:
        raise ConfigError("repeats must be at least 1")
    names = [b.name for b in benchmarks]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate benchmark names in record: {names}")
    return {
        "kind": "bench_record",
        "schema_version": SCHEMA_VERSION,
        "timestamp": (
            timestamp
            if timestamp is not None
            else time.strftime("%Y-%m-%dT%H:%M:%S")
        ),
        "mode": mode,
        "repeats": int(repeats),
        "host": dict(host) if host else {},
        "benchmarks": {
            b.name: {
                "value": float(b.value),
                "unit": b.unit,
                "direction": b.direction,
                "noise_floor": float(b.noise_floor),
                "kind": b.kind,
            }
            for b in benchmarks
        },
    }


def load_history(path) -> List[Dict[str, object]]:
    """Read a JSONL history, keeping only well-formed bench records.

    Malformed lines are skipped: a torn write at the tail must not take
    the whole trajectory down, and the gate then simply compares against
    the last record that did survive intact.
    """
    records: List[Dict[str, object]] = []
    path = Path(path)
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and record.get("kind") == "bench_record":
            records.append(record)
    return records


def append_record(path, record: Dict[str, object]) -> None:
    """Append one record as a JSONL line (atomic enough: single write)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as fh:
        fh.write(json.dumps(record) + "\n")


def last_record(
    history: Sequence[Dict[str, object]], offset: int = 0
) -> Optional[Dict[str, object]]:
    """The newest record (``offset=0``) or an earlier one (``offset=1`` =
    second newest); None when the history is too short."""
    if len(history) <= offset:
        return None
    return history[-(offset + 1)]


def compare(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    rel_threshold: float = 0.2,
    include_wall: bool = False,
) -> List[Regression]:
    """Regressions of ``candidate`` vs ``baseline``.

    A benchmark present in only one record is ignored (adding or retiring
    a benchmark is not a regression).  ``rel_threshold`` is the relative
    worseness bound; each benchmark's own ``noise_floor`` (the larger of
    the two records') additionally bounds the absolute delta.  Wall-clock
    benchmarks are skipped unless ``include_wall`` — their values only
    compare within one host.
    """
    if not 0.0 < rel_threshold:
        raise ConfigError("relative threshold must be positive")
    base_benches = baseline.get("benchmarks", {})
    cand_benches = candidate.get("benchmarks", {})
    out: List[Regression] = []
    for name in sorted(set(base_benches) & set(cand_benches)):
        base, cand = base_benches[name], cand_benches[name]
        if not include_wall and (
            base.get("kind") == "wall" or cand.get("kind") == "wall"
        ):
            continue
        direction = str(base.get("direction", "higher"))
        base_value = float(base["value"])
        cand_value = float(cand["value"])
        if direction == "lower":
            worse_by = cand_value - base_value
        else:
            worse_by = base_value - cand_value
        if worse_by <= 0:
            continue
        floor = max(
            float(base.get("noise_floor", 0.0)),
            float(cand.get("noise_floor", 0.0)),
        )
        scale = abs(base_value)
        delta_frac = worse_by / scale if scale > 0 else float("inf")
        if delta_frac > rel_threshold and worse_by > floor:
            out.append(
                Regression(
                    name=name,
                    baseline=base_value,
                    candidate=cand_value,
                    delta_frac=delta_frac,
                    unit=str(base.get("unit", "")),
                    direction=direction,
                )
            )
    return out


def format_regressions(regressions: Sequence[Regression]) -> str:
    """One line per regressed benchmark, worst first."""
    ordered = sorted(regressions, key=lambda r: r.delta_frac, reverse=True)
    return "\n".join(r.describe() for r in ordered)
