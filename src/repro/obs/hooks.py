"""The zero-cost-when-disabled observation hook.

Instrumented code (engines, the serving loop, the experiment registry)
asks this module for the *active observation* — a bundled tracer + metrics
registry — and publishes into it only when one is installed::

    from ..obs import hooks as obs_hooks
    ...
    obs = obs_hooks.active()
    if obs is not None:
        obs.metrics.counter("mem.level_hits", level="dram").inc(n)

When nothing is observing, ``active()`` returns ``None`` and the
instrumented code takes a single cheap branch.  Crucially, every hook
sits at *batch/run granularity*, never inside the per-line hot loops, so
the fast engine's bit-exact results and its BENCH_sim throughput are
unchanged whether or not an observation is active (enforced by
``tests/test_obs_integration.py``).

The active observation is process-global and not reference counted:
:func:`session` is a plain save/restore context manager, so nested
sessions observe into the innermost observation only.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from .metrics import MetricsRegistry
from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .requests import RequestLog

__all__ = ["Observation", "active", "enabled", "session"]


class Observation:
    """One observed run: a tracer and a metrics registry that share a lifetime.

    ``requests`` is the opt-in third instrument: attach a
    :class:`repro.obs.requests.RequestLog` and every serving simulation in
    the session records per-request lifecycles (the runner's
    ``--request-log`` flag does this).  It defaults to ``None`` — request
    logging is a further opt-in on top of tracing/metrics because it
    records one object per request rather than per run.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        requests: Optional["RequestLog"] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.requests = requests


#: The installed observation; None means every hook is a no-op branch.
_ACTIVE: Optional[Observation] = None


def active() -> Optional[Observation]:
    """The currently installed observation, or None when disabled."""
    return _ACTIVE


def enabled() -> bool:
    """Whether an observation is currently installed."""
    return _ACTIVE is not None


@contextmanager
def session(observation: Optional[Observation] = None) -> Iterator[Observation]:
    """Install an observation for the duration of a ``with`` block.

    Yields the observation (a fresh one is created when none is given);
    the previously active observation, if any, is restored on exit.
    """
    global _ACTIVE
    obs = observation if observation is not None else Observation()
    previous = _ACTIVE
    _ACTIVE = obs
    try:
        yield obs
    finally:
        _ACTIVE = previous
