"""Counterfactual what-if engine: re-time logged requests, no re-simulation.

Given one observed cluster run (its request-log records and the
:class:`~repro.serving.cluster.ClusterConfig` that produced it), predict
what the latency distribution *would have been* under a modified knob —
without running the event loop again.  This is the cheap objective
estimator the autotuner needs (ROADMAP item 5): one simulated run costs
seconds, a re-timing pass costs milliseconds, and the predictions are
validated against actual re-runs inside the noise-floored bounds of
:mod:`repro.obs.regress` on the pinned ``critpath_observatory``
scenarios.

Supported knobs (:data:`KNOBS`):

* ``hedge_min_ms`` — a different hedge-delay floor.  Hedges that fired
  are re-timed **exactly**: the logged events give the arming time, the
  fired delay, and the hedge attempt's full duration, so shifting the
  fire time shifts its finish one-for-one, and the slot resolves at the
  earliest finish among its logged attempts.  Slots that never hedged
  but would have under a lower floor are *estimated* from per-shard
  median attempt durations.
* ``replication_delta`` — ``replication + k``.  The counterfactual shard
  map is rebuilt with the real placement code (same seed — placement is
  deterministic), and a slot that went *missing* is rescued by an extra
  replica that was alive at the failure time; its resolve is estimated
  as the failure time plus that node's median logged attempt duration.
* ``gather_width`` — a narrower gather is **exact**: the Gumbel top-k
  gather stream is regenerated bit-for-bit (same seed and hotness), and
  the top-(w-1) shards of a request are a subset of its logged top-w, so
  every kept slot's resolve is already in the log.  A wider gather adds
  estimated slots (per-shard median durations).
* ``extra_cores`` — scales the critical-path queue segments by
  ``cores / (cores + k)`` (an M/M/c-flavored approximation; reported but
  not gated).
* ``cat_partition`` — removes the slowdown ``penalty`` carved out of
  every logged attempt (the CAT partition isolates the noisy neighbor),
  letting a formerly-slow attempt win its slot back.

Every prediction recomputes per-request outcomes (missing-slot counts →
completed/degraded/failed) and reports p99 over the finite latencies,
matching how the acceptance suites score actual re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .critpath import _SlotLog, _index_slots, extract_critical_path
from .regress import Benchmark, compare, make_record

__all__ = [
    "KNOBS",
    "WHATIF_SCHEMA_VERSION",
    "WhatIfPrediction",
    "percentile",
    "predict",
    "whatif_record",
    "within_bounds",
]

#: Version stamp of the exported ``whatif`` record shape.
WHATIF_SCHEMA_VERSION = 1

#: Knobs the engine can re-time.
KNOBS = (
    "hedge_min_ms",
    "replication_delta",
    "gather_width",
    "extra_cores",
    "cat_partition",
)


@dataclass
class WhatIfPrediction:
    """One counterfactual's predicted latency outcome."""

    knob: str
    value: float
    metric: str
    baseline: float
    predicted: float
    requests: int
    #: True when any per-slot re-timing fell back to a median estimate
    #: (vs the exact event-shift arithmetic).
    estimated: bool = False
    latencies_ms: List[float] = field(default_factory=list)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (matches ``np.percentile``)."""
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


# -- shared machinery ---------------------------------------------------------


def _attempt_durations(
    records: Sequence[Dict[str, object]],
) -> Tuple[Dict[int, List[float]], Dict[int, List[float]]]:
    """Logged ok-attempt durations, keyed by shard and by node."""
    by_shard: Dict[int, List[float]] = {}
    by_node: Dict[int, List[float]] = {}
    for rec in records:
        if rec.get("shards") is None:
            continue
        for slot in _index_slots(rec).values():
            for t_ok, node, _ in slot.oks:
                submit = slot.submit_of(node)
                if submit is None:
                    continue
                dur = t_ok - submit
                by_shard.setdefault(slot.shard, []).append(dur)
                by_node.setdefault(node, []).append(dur)
    return by_shard, by_node


def _median(values: List[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class _Retimer:
    """Folds per-slot counterfactual resolves into per-request latencies.

    A slot adjuster maps ``(record, slot)`` to ``(resolve_ms, missing,
    estimated)``; the retimer recomputes each request's end (the max slot
    resolve — the gather fan-in), its counterfactual outcome from the
    missing count, and the finite-latency set the p99 is scored on.
    """

    def __init__(self, config) -> None:
        self.config = config
        self.estimated = False

    def run(
        self, records: Sequence[Dict[str, object]], adjust
    ) -> List[float]:
        latencies: List[float] = []
        for rec in records:
            if rec.get("outcome") == "shed" or rec.get("shards") is None:
                continue
            arrival = float(rec["arrival_ms"])
            slots = _index_slots(rec)
            if not slots:
                continue
            resolves: List[float] = []
            missing = 0
            for shard in sorted(slots):
                resolve, is_missing, estimated = adjust(rec, slots[shard])
                if estimated:
                    self.estimated = True
                if is_missing:
                    missing += 1
                if resolve is not None:
                    resolves.append(resolve)
            width = len(slots)
            if missing >= width or (
                missing > 0 and not self.config.partial_results
            ):
                continue  # failed: no finite latency
            latencies.append(max(resolves) - arrival if resolves else 0.0)
        return latencies


# -- knob adjusters -----------------------------------------------------------


def _hedge_adjuster(
    config,
    new_min_ms: float,
    dur_by_shard: Dict[int, List[float]],
    q_estimate: Optional[float],
):
    """Re-time each slot's delivery race under a different hedge floor."""
    old_min = config.hedge.min_ms if config.hedge is not None else None
    max_hedges = config.hedge.max_hedges if config.hedge is not None else 0

    def adjust(rec, slot):
        arrival = float(rec["arrival_ms"])
        if not slot.oks:
            return slot.resolve(arrival), True, False
        estimated = False
        candidates: List[float] = []
        for t_ok, node, attrs in slot.oks:
            submit = slot.submit_of(node)
            if submit is None:
                candidates.append(t_ok)
                continue
            fired = next(
                (h for h in slot.hedges if h[0] == submit and h[1] == node),
                None,
            )
            if fired is None:
                candidates.append(t_ok)  # not a hedge: unchanged
                continue
            # Exact shift: the hedge armed when the previous attempt went
            # out; under the new floor it fires at arming + max(floor, q)
            # and its measured duration rides along unchanged.
            arming = max(
                (t for t, _, _ in slot.calls if t < submit), default=None
            )
            if arming is None:
                candidates.append(t_ok)
                continue
            q = fired[2] if fired[2] is not None else 0.0
            candidates.append(arming + max(new_min_ms, q) + (t_ok - submit))
        if (
            old_min is not None
            and new_min_ms < old_min
            and len(slot.hedges) < max_hedges
            and slot.calls
        ):
            # No hedge fired here, but a lower floor may have armed one
            # that beats the logged resolve: estimate its finish from the
            # per-shard median attempt duration.
            est_dur = _median(dur_by_shard.get(slot.shard, []))
            if est_dur is not None:
                first = slot.calls[0][0]
                fire = first + max(new_min_ms, q_estimate or 0.0)
                if fire < slot.resolve(arrival):
                    candidates.append(fire + est_dur)
                    estimated = True
        return min(candidates), False, estimated

    return adjust


def _replication_adjuster(
    config, delta: int, dur_by_node: Dict[int, List[float]]
):
    """Rescue missing slots with the extra replicas of ``replication+k``."""
    from ..serving.cluster import ShardMap  # lazy: obs must not import serving eagerly

    old_map = ShardMap(config).replicas
    new_map = ShardMap(replace(config, replication=config.replication + delta)).replicas
    plan = config.faults
    global_durs = [d for durs in dur_by_node.values() for d in durs]

    def adjust(rec, slot):
        arrival = float(rec["arrival_ms"])
        if slot.oks:
            return slot.resolve(arrival), False, False
        fail_t = slot.resolve(arrival)
        extras = [
            n for n in new_map[slot.shard] if n not in old_map[slot.shard]
        ]
        for node in extras:
            if plan is not None and (
                plan.node_down(node, fail_t) or plan.partitioned(node, fail_t)
            ):
                continue
            est = _median(dur_by_node.get(node, [])) or _median(global_durs)
            if est is None:
                est = 2.0 * config.hop_ms + config.mean_service_ms
            return fail_t + est, False, True
        return fail_t, True, False  # extras were down too: still missing

    return adjust


def _gather_adjuster(
    config,
    new_width: int,
    records: Sequence[Dict[str, object]],
    dur_by_shard: Dict[int, List[float]],
):
    """Exact narrower gather (Gumbel top-k subset), estimated wider one."""
    from ..serving.cluster import ShardMap  # lazy import, as above

    n = max((int(rec["req"]) for rec in records), default=-1) + 1
    new_rows = ShardMap(replace(config, gather_width=new_width)).gather_shards(n)
    global_durs = [d for durs in dur_by_shard.values() for d in durs]
    # First-order load feedback: the per-node backlog is proportional to
    # the fleet-wide call volume, which scales with the gather width.
    queue_factor = new_width / float(config.gather_width)

    def adjust(rec, slot):
        arrival = float(rec["arrival_ms"])
        kept = new_rows[int(rec["req"])]
        if slot.shard not in kept:
            return None, False, False  # dropped from the gather entirely
        if not slot.oks:
            return slot.resolve(arrival), True, False
        candidates = []
        for t_ok, _node, attrs in slot.oks:
            queue = attrs.get("queue_ms")
            shift = (
                float(queue) * (queue_factor - 1.0)
                if queue is not None
                else 0.0
            )
            candidates.append(t_ok + shift)
        return min(candidates), False, False

    def extra_slots(rec) -> List[Tuple[float, bool]]:
        """(resolve, estimated) of counterfactual slots absent from the log."""
        arrival = float(rec["arrival_ms"])
        logged = set(rec.get("shards", []))
        out = []
        for shard in new_rows[int(rec["req"])]:
            if int(shard) in logged:
                continue
            est = _median(dur_by_shard.get(int(shard), [])) or _median(global_durs)
            if est is None:
                est = 2.0 * config.hop_ms + config.mean_service_ms
            out.append((arrival + est, True))
        return out

    return adjust, extra_slots


def _cat_adjuster(config):
    """Remove every attempt's slowdown penalty (CAT partition on).

    Two first-order effects per attempt: its own service deflates from
    ``service`` to ``service / slow``, and its on-node queue wait — a
    backlog composed of *other* calls inflated by the same factor —
    deflates by ``1 - 1/slow`` too.  The earliest adjusted finish wins
    the slot back (a formerly-slow primary can beat its hedge again).
    """

    def adjust(rec, slot):
        arrival = float(rec["arrival_ms"])
        if not slot.oks:
            return slot.resolve(arrival), True, False
        candidates = []
        for t_ok, node, attrs in slot.oks:
            service = attrs.get("service_ms")
            slow = attrs.get("slow")
            queue = attrs.get("queue_ms")
            penalty = 0.0
            if service is not None and slow:
                penalty += float(service) - float(service) / float(slow)
                if queue is not None and float(slow) > 1.0:
                    penalty += float(queue) * (1.0 - 1.0 / float(slow))
            candidates.append(t_ok - penalty)
        return min(candidates), False, False

    return adjust


# -- the engine ---------------------------------------------------------------


def predict(
    records: Sequence[Dict[str, object]],
    config,
    knob: str,
    value: float,
    q: float = 99.0,
) -> WhatIfPrediction:
    """Predict the latency percentile under one knob change.

    ``records`` is one observed cluster run's request log; ``config`` the
    :class:`~repro.serving.cluster.ClusterConfig` that produced it (never
    mutated).  ``value`` is knob-specific: the new floor for
    ``hedge_min_ms``, the replica delta for ``replication_delta``, the
    new width for ``gather_width``, the added cores for ``extra_cores``,
    ignored for ``cat_partition``.  Pure re-timing: deterministic, no
    event loop, no RNG draws beyond regenerating the (seeded, identical)
    gather stream.
    """
    if knob not in KNOBS:
        raise ValueError(f"unknown what-if knob {knob!r}; known: {KNOBS}")
    baseline = [
        float(rec["latency_ms"])
        for rec in records
        if rec.get("latency_ms") is not None
    ]
    retimer = _Retimer(config)
    if knob == "extra_cores":
        # Queue scaling over the extracted critical path — the one knob
        # re-timed from segments rather than slot resolves.
        shrink = 1.0 - config.cores_per_node / (config.cores_per_node + value)
        latencies = []
        for rec in records:
            if rec.get("latency_ms") is None:
                continue
            path = extract_critical_path(rec)
            queued = sum(
                s.dur_ms for s in path.segments if s.kind == "queue"
            )
            latencies.append(float(rec["latency_ms"]) - queued * shrink)
        retimer.estimated = True
    elif knob == "gather_width":
        dur_by_shard, _ = _attempt_durations(records)
        adjust, extra_slots = _gather_adjuster(
            config, int(value), records, dur_by_shard
        )
        latencies = []
        for rec in records:
            if rec.get("outcome") == "shed" or rec.get("shards") is None:
                continue
            arrival = float(rec["arrival_ms"])
            slots = _index_slots(rec)
            resolves, missing, width = [], 0, 0
            for shard in sorted(slots):
                resolve, is_missing, _ = adjust(rec, slots[shard])
                if resolve is None and not is_missing:
                    continue  # dropped slot: not part of the new gather
                width += 1
                if is_missing:
                    missing += 1
                if resolve is not None:
                    resolves.append(resolve)
            for resolve, estimated in extra_slots(rec):
                width += 1
                resolves.append(resolve)
                if estimated:
                    retimer.estimated = True
            if width == 0:
                continue
            if missing >= width or (
                missing > 0 and not config.partial_results
            ):
                continue
            latencies.append(max(resolves) - arrival if resolves else 0.0)
    else:
        if knob == "hedge_min_ms":
            dur_by_shard, _ = _attempt_durations(records)
            qs = [
                h[2]
                for rec in records
                if rec.get("shards") is not None
                for slot in _index_slots(rec).values()
                for h in slot.hedges
                if h[2] is not None
            ]
            adjust = _hedge_adjuster(
                config, float(value), dur_by_shard, _median(qs)
            )
        elif knob == "replication_delta":
            _, dur_by_node = _attempt_durations(records)
            adjust = _replication_adjuster(config, int(value), dur_by_node)
        else:  # cat_partition
            adjust = _cat_adjuster(config)
        latencies = retimer.run(records, adjust)
    return WhatIfPrediction(
        knob=knob,
        value=float(value),
        metric=f"p{q:g}_ms",
        baseline=percentile(baseline, q),
        predicted=percentile(latencies, q),
        requests=len(latencies),
        estimated=retimer.estimated,
        latencies_ms=latencies,
    )


# -- validation + export ------------------------------------------------------


def within_bounds(
    name: str,
    actual: float,
    predicted: float,
    rel_threshold: float = 0.25,
    noise_floor: float = 0.0,
) -> bool:
    """Two-sided noise-floored check that a prediction matches reality.

    Builds single-benchmark records and runs :func:`repro.obs.regress.
    compare` in both directions: the prediction is in bounds iff neither
    direction flags a regression — i.e. |predicted - actual| is within
    ``rel_threshold`` of the actual *or* under the absolute noise floor.
    """

    def record(value: float) -> Dict[str, object]:
        return make_record(
            mode="whatif",
            repeats=1,
            benchmarks=[
                Benchmark(
                    name, value, "ms", direction="lower",
                    noise_floor=noise_floor, kind="sim",
                )
            ],
            timestamp="-",  # deterministic: no wall clock in validation
        )

    base, cand = record(actual), record(predicted)
    return not compare(base, cand, rel_threshold) and not compare(
        cand, base, rel_threshold
    )


def whatif_record(
    prediction: WhatIfPrediction,
    scenario: str = "",
    actual: Optional[float] = None,
    in_bounds: Optional[bool] = None,
) -> Dict[str, object]:
    """One schema-valid ``whatif`` JSONL record (``$defs.whatif_record``)."""
    return {
        "kind": "whatif",
        "schema_version": WHATIF_SCHEMA_VERSION,
        "scenario": scenario,
        "knob": prediction.knob,
        "value": prediction.value,
        "metric": prediction.metric,
        "baseline": prediction.baseline,
        "predicted": prediction.predicted,
        "actual": actual,
        "within_bounds": in_bounds,
        "requests": prediction.requests,
        "estimated": prediction.estimated,
    }
