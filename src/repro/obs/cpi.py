"""CPI stacks: decompose core cycles into retire / cache-bound buckets.

This is the repro's analog of the paper's Top-down analysis (their Fig 2
"CPU execution-stall breakdown" and Fig 10's stall-shift story): every
stage's core cycles are split into

``retire``      useful issue time (instructions / issue width),
``frontend``    fetch/decode stalls — structurally zero in this simulator
                (the core model has no front-end; kept for schema parity
                with real Top-down output),
``l1_bound`` / ``l2_bound``
                stalls on L1/L2 hits — structurally zero for the embedding
                engine because the OoO model pipelines any load under
                ``CoreModel.HIT_PIPELINE_THRESHOLD`` (L1 and L2 hits);
                dense stages *do* charge their streaming stalls here,
``l3_bound`` / ``dram_bound``
                memory stalls attributed to accesses served at L3 / DRAM,
                proportional to each level's aggregate nominal latency.

Buckets are constructed to sum to the stage's total cycles *exactly*
(the residual of the float arithmetic is folded into the dominant stall
bucket), so downstream consumers can treat the stack as a partition.

Stacks are published into a :class:`~repro.obs.metrics.MetricsRegistry`
as ``core.cycles{stage=...}`` plus ``core.cpi.<bucket>{stage=...}``
counters and reassembled by :func:`collect_cpi_stacks` — which is what
``repro-experiment --cpi-stack`` and ``tools/trace_report.py`` print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError
from .metrics import MetricsRegistry

__all__ = [
    "CPI_BUCKETS",
    "CpiStack",
    "embedding_cpi_stack",
    "dense_cpi_stack",
    "publish_cpi_stack",
    "collect_cpi_stacks",
    "format_cpi_table",
]

#: Bucket names in presentation order (top of the stack first).
CPI_BUCKETS = (
    "retire",
    "frontend",
    "l1_bound",
    "l2_bound",
    "l3_bound",
    "dram_bound",
)


@dataclass
class CpiStack:
    """One stage's cycle decomposition.  ``buckets`` partitions ``total_cycles``."""

    stage: str
    total_cycles: float
    buckets: Dict[str, float]

    def fractions(self) -> Dict[str, float]:
        """Bucket shares of the total (all zero for a zero-cycle stage)."""
        if self.total_cycles <= 0:
            return {name: 0.0 for name in CPI_BUCKETS}
        return {
            name: self.buckets.get(name, 0.0) / self.total_cycles
            for name in CPI_BUCKETS
        }

    def check(self, rel_tol: float = 1e-6) -> None:
        """Raise unless the buckets sum to the total within ``rel_tol``."""
        total = sum(self.buckets.values())
        scale = max(abs(self.total_cycles), 1.0)
        if abs(total - self.total_cycles) > rel_tol * scale:
            raise ConfigError(
                f"CPI stack for {self.stage!r} does not partition its cycles: "
                f"buckets sum to {total}, total is {self.total_cycles}"
            )

    def merge(self, other: "CpiStack") -> "CpiStack":
        """Combine two stacks for the same stage (cycle-weighted sum)."""
        merged = {
            name: self.buckets.get(name, 0.0) + other.buckets.get(name, 0.0)
            for name in CPI_BUCKETS
        }
        return CpiStack(self.stage, self.total_cycles + other.total_cycles, merged)


def _exact_partition(total: float, buckets: Dict[str, float]) -> Dict[str, float]:
    """Fold the float residual into the largest non-retire bucket."""
    residual = total - sum(buckets.values())
    if residual:
        target = max(
            (name for name in buckets if name != "retire"),
            key=lambda name: buckets[name],
            default="retire",
        )
        buckets[target] = max(0.0, buckets[target] + residual)
    return buckets


def embedding_cpi_stack(
    stage: str,
    total_cycles: float,
    issue_cycles: float,
    level_hits: Dict[str, int],
    l3_latency: float,
    dram_latency: float,
) -> CpiStack:
    """Decompose a trace-driven (embedding) run's cycles.

    ``retire`` is the ideal issue time; everything else is stall, split
    between ``l3_bound`` and ``dram_bound`` in proportion to the aggregate
    nominal latency each level contributed (hit count x nominal latency).
    L1/L2 buckets stay zero — the simulated core pipelines those hits, so
    they never stall the window (a documented divergence from real
    Top-down, where L1-bound also carries DTLB and store-forward costs).
    """
    buckets = {name: 0.0 for name in CPI_BUCKETS}
    if total_cycles <= 0:
        return CpiStack(stage, 0.0, buckets)
    retire = min(max(issue_cycles, 0.0), total_cycles)
    stall = total_cycles - retire
    w_l3 = level_hits.get("l3", 0) * l3_latency
    w_dram = level_hits.get("dram", 0) * dram_latency
    weight = w_l3 + w_dram
    buckets["retire"] = retire
    if weight > 0:
        buckets["l3_bound"] = stall * (w_l3 / weight)
        buckets["dram_bound"] = stall * (w_dram / weight)
    else:
        # No off-chip accesses recorded: any residual stall (drain of
        # in-flight fills at batch end) is charged to DRAM.
        buckets["dram_bound"] = stall
    return CpiStack(stage, total_cycles, _exact_partition(total_cycles, buckets))


def dense_cpi_stack(stage: str, total_cycles: float, stall_fraction: float) -> CpiStack:
    """Decompose an analytically-timed dense stage (MLP / interaction).

    Dense stages stream their weights out of L2/L3 (their footprints are a
    few MB), so the analytic stall fraction is split evenly between
    ``l2_bound`` and ``l3_bound``; the rest retires.
    """
    if not 0.0 <= stall_fraction <= 1.0:
        raise ConfigError(f"stall fraction must be in [0, 1], got {stall_fraction}")
    buckets = {name: 0.0 for name in CPI_BUCKETS}
    if total_cycles <= 0:
        return CpiStack(stage, 0.0, buckets)
    stall = total_cycles * stall_fraction
    buckets["retire"] = total_cycles - stall
    buckets["l2_bound"] = stall / 2.0
    buckets["l3_bound"] = stall / 2.0
    return CpiStack(stage, total_cycles, _exact_partition(total_cycles, buckets))


def publish_cpi_stack(registry: MetricsRegistry, stack: CpiStack) -> None:
    """Accumulate one stack into the registry's per-stage CPI counters."""
    registry.counter("core.cycles", stage=stack.stage).inc(stack.total_cycles)
    for name in CPI_BUCKETS:
        registry.counter(f"core.cpi.{name}", stage=stack.stage).inc(
            stack.buckets.get(name, 0.0)
        )


def collect_cpi_stacks(registry: MetricsRegistry) -> List[CpiStack]:
    """Rebuild per-stage stacks from published counters, largest first."""
    stacks: List[CpiStack] = []
    for counter in registry.find("core.cycles"):
        labels = dict(counter.labels)  # type: ignore[union-attr]
        stage = labels.get("stage", "?")
        buckets = {
            name: registry.value(f"core.cpi.{name}", stage=stage) or 0.0
            for name in CPI_BUCKETS
        }
        stacks.append(CpiStack(stage, counter.value, buckets))  # type: ignore[union-attr]
    stacks.sort(key=lambda s: s.total_cycles, reverse=True)
    return stacks


def format_cpi_table(stacks: List[CpiStack]) -> str:
    """Aligned text table: one row per stage, one column per bucket."""
    if not stacks:
        return "(no CPI data recorded)"
    header = ["stage", "cycles"] + [name for name in CPI_BUCKETS]
    rows = []
    for stack in stacks:
        fractions = stack.fractions()
        rows.append(
            [stack.stage, f"{stack.total_cycles:,.0f}"]
            + [f"{fractions[name] * 100:5.1f}%" for name in CPI_BUCKETS]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.rjust(w) for c, w in zip(r, widths)) for r in rows)
    return "\n".join(lines)
