"""Counter / gauge / histogram metrics with a process-local registry.

The registry is the simulator's analog of a perf-counter multiplexer: every
subsystem (caches, DRAM, cores, the serving queue) publishes its counters
under stable dotted names with optional labels, and one export call writes
the whole set as JSONL for offline analysis (``tools/trace_report.py``).

Histograms use **fixed log2 buckets**: bucket ``k`` holds observations in
``[2**(k-1), 2**k)`` (with one underflow bucket below ``2**LOG2_MIN``).
Log2 bucketing keeps the bucket count tiny across the simulator's dynamic
range — load latencies span 5 cycles (L1) to ~1e4 (queued DRAM), request
latencies span sub-ms to seconds — while bounding the relative error of any
reconstructed percentile by 2x, the same trade VTune's latency histograms
make.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LOG2_MIN",
    "LOG2_MAX",
]

#: Smallest histogram bucket exponent: values below ``2**LOG2_MIN`` land in
#: the underflow bucket.  2**-10 ~ 1e-3 covers sub-millisecond latencies.
LOG2_MIN = -10

#: Largest bucket exponent: values at or above ``2**LOG2_MAX`` clamp into
#: the last bucket.  2**40 ~ 1e12 cycles is beyond any simulated quantity.
LOG2_MAX = 40

#: Metric label set, stored sorted so label order never distinguishes keys.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing event count (float-valued for cycle sums)."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ConfigError(f"counter {self.name} increment must be >= 0")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready record of this metric."""
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


@dataclass
class Gauge:
    """Last-write-wins instantaneous value (utilization, inflation, ...)."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready record of this metric."""
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Fixed log2-bucket distribution with exact count/sum/min/max.

    Bucket ``i`` (for ``i >= 1``) counts observations in
    ``[2**(i + LOG2_MIN - 1), 2**(i + LOG2_MIN))``; bucket 0 is the
    underflow bucket for values below ``2**LOG2_MIN`` (including zero and
    negatives, which the simulator never produces but the bucket absorbs
    defensively).
    """

    NUM_BUCKETS = LOG2_MAX - LOG2_MIN + 1

    #: Exemplar ids kept per bucket; enough to find concrete offending
    #: requests without letting the snapshot grow with the request count.
    MAX_EXEMPLARS_PER_BUCKET = 4

    def __init__(self, name: str = "", labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.buckets = np.zeros(self.NUM_BUCKETS, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.exemplars: Dict[int, List[str]] = {}

    @staticmethod
    def bucket_index(value: float) -> int:
        """Bucket index a single value falls into.

        ``frexp`` writes ``value = m * 2**e`` with ``m in [0.5, 1)``, so
        ``e`` is exactly the upper exponent of the half-open log2 interval
        containing ``value`` — no special-casing of powers of two.
        """
        if value < 2.0**LOG2_MIN:
            return 0
        _, e = math.frexp(value)
        return min(e, LOG2_MAX) - LOG2_MIN

    @staticmethod
    def bucket_upper_bound(index: int) -> float:
        """Exclusive upper edge of bucket ``index``."""
        return 2.0 ** (index + LOG2_MIN)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.buckets[self.bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: np.ndarray) -> None:
        """Record a batch of observations (vectorized bucket assignment)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        clipped = np.clip(values, 2.0**LOG2_MIN, None)
        _, exp = np.frexp(clipped)
        idx = np.minimum(exp, LOG2_MAX) - LOG2_MIN
        idx[values < 2.0**LOG2_MIN] = 0
        # bincount, not np.add.at: identical counts, but add.at's buffered
        # fancy indexing is ~25x slower on multi-million-element batches.
        self.buckets += np.bincount(idx, minlength=self.NUM_BUCKETS)
        self.count += values.size
        self.sum += float(values.sum())
        self.min = min(self.min, float(values.min()))
        self.max = max(self.max, float(values.max()))

    def observe_exemplar(self, value: float, exemplar_id: str) -> None:
        """Record one observation with an exemplar id for its bucket.

        Exemplars link histogram buckets back to concrete events (request
        ids from :mod:`repro.obs.requests`): the first
        :data:`MAX_EXEMPLARS_PER_BUCKET` ids per bucket are kept, so every
        populated bucket — in particular the slow tail buckets — names
        requests that landed in it.
        """
        value = float(value)
        self.observe(value)
        ids = self.exemplars.setdefault(self.bucket_index(value), [])
        if len(ids) < self.MAX_EXEMPLARS_PER_BUCKET:
            ids.append(str(exemplar_id))

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate percentile (q in [0, 100]) from the buckets.

        Linear interpolation within the containing bucket, clamped to the
        observed min/max so the estimate never leaves the data range.
        Returns 0.0 when the histogram is empty, matching the empty-case
        convention of :class:`repro.mem.stats.CacheStats.hit_rate` (the
        snapshot form reports ``None`` instead, alongside min/max — a
        reconstructed 0.0 percentile would read as "fast", not "absent").
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cum = 0
        for i, n in enumerate(self.buckets.tolist()):
            if n == 0:
                continue
            if cum + n >= target:
                upper = self.bucket_upper_bound(i)
                lower = upper / 2.0 if i > 0 else 0.0
                frac = (target - cum) / n
                estimate = lower + frac * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cum += n
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Return the combination of two histograms (same bucketing)."""
        merged = Histogram(self.name, self.labels)
        merged.buckets = self.buckets + other.buckets
        merged.count = self.count + other.count
        merged.sum = self.sum + other.sum
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        for source in (self, other):
            for bucket, ids in source.exemplars.items():
                kept = merged.exemplars.setdefault(bucket, [])
                kept.extend(ids[: self.MAX_EXEMPLARS_PER_BUCKET - len(kept)])
        return merged

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready record: sparse non-zero buckets plus summary stats.

        A zero-sample histogram reports ``None`` for min/max *and* the
        percentiles — consistently "no data", never a reconstructed 0.0
        that downstream tooling could mistake for a measured latency.
        """
        nonzero = np.nonzero(self.buckets)[0]
        record: Dict[str, object] = {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "count": int(self.count),
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(50.0) if self.count else None,
            "p95": self.percentile(95.0) if self.count else None,
            "p99": self.percentile(99.0) if self.count else None,
            "buckets": {
                str(self.bucket_upper_bound(int(i))): int(self.buckets[i])
                for i in nonzero
            },
        }
        if self.exemplars:
            record["exemplars"] = {
                str(self.bucket_upper_bound(int(bucket))): list(ids)
                for bucket, ids in sorted(self.exemplars.items())
            }
        return record


class MetricsRegistry:
    """Get-or-create store of metrics keyed by (name, labels).

    One registry lives for one observed run (see :mod:`repro.obs.hooks`);
    subsystems fetch their instruments on publication, so an instrument
    exists only if something actually emitted it.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, str]):
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for (name, labels), created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for (name, labels), created on first use."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram for (name, labels), created on first use."""
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        return iter(self._metrics.values())

    def find(self, name: str) -> List[object]:
        """Every metric registered under ``name`` (any label set)."""
        return [m for (n, _), m in self._metrics.items() if n == name]

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Scalar value of a counter/gauge, or None if never emitted."""
        metric = self._metrics.get((name, _labelset(labels)))
        if metric is None:
            return None
        return metric.value  # type: ignore[union-attr]

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready records of every metric, sorted by (name, labels)."""
        return [
            self._metrics[key].snapshot()  # type: ignore[union-attr]
            for key in sorted(self._metrics)
        ]

    def to_jsonl(self, path) -> int:
        """Write one JSON object per metric; returns the metric count."""
        records = self.snapshot()
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")
        return len(records)
