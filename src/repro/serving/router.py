"""Front-end request router for the simulated serving cluster.

The router is the piece of the fleet that turns N independent node worlds
(:class:`repro.serving.server.ServerSim` instances wrapped by
:mod:`repro.serving.cluster`) into one service.  It owns three policies:

* **Replica selection** — ``round_robin`` rotates a per-shard pointer
  over a shard's replicas; ``least_loaded`` picks the replica whose
  earliest core frees soonest (ties break to the lower node id, keeping
  selection deterministic).
* **Health** — a node that fails :attr:`HealthPolicy.eject_after`
  consecutive shard calls is *ejected* (no longer routable) and probed
  every :attr:`HealthPolicy.probe_interval_ms` until a probe finds it
  reachable again, at which point it is re-admitted with a clean slate.
  Any successful call also resets the consecutive-failure count.
* **Hedging** — when a shard call has been outstanding longer than a
  rolling quantile of recent call latencies (:class:`HedgePolicy`), the
  router issues a duplicate to another replica and takes whichever
  response lands first (first completion wins; the loser is counted as
  wasted work, never double-delivered).

Everything here is deterministic given the cluster seed: the router adds
no randomness of its own — pointers, failure counters, and latency
windows evolve purely from the (deterministic) event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..errors import ConfigError

__all__ = [
    "HealthPolicy",
    "HealthTracker",
    "HedgePolicy",
    "LatencyWindow",
    "ROUTING_POLICIES",
    "Router",
]

#: Replica-selection policies the router knows.
ROUTING_POLICIES = ("round_robin", "least_loaded")


@dataclass(frozen=True)
class HealthPolicy:
    """Failure-detection and re-admission parameters of the router.

    ``eject_after`` consecutive failed calls to a node eject it from
    routing; an ejected node is probed every ``probe_interval_ms`` and
    re-admitted the first time a probe finds it reachable.
    """

    eject_after: int = 3
    probe_interval_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.eject_after <= 0:
            raise ConfigError("ejection threshold must be positive")
        if self.probe_interval_ms <= 0:
            raise ConfigError("probe interval must be positive")


@dataclass(frozen=True)
class HedgePolicy:
    """When and how often to duplicate a straggling shard call.

    A hedge fires once a call has been outstanding for
    ``max(min_ms, q(quantile))`` where ``q`` is taken over the last
    ``window`` observed call latencies; each shard call issues at most
    ``max_hedges`` hedges.
    """

    quantile: float = 95.0
    min_ms: float = 1.0
    window: int = 128
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise ConfigError("hedge quantile must be in (0, 100]")
        if self.min_ms <= 0:
            raise ConfigError("hedge floor must be positive")
        if self.window <= 0:
            raise ConfigError("hedge latency window must be positive")
        if self.max_hedges <= 0:
            raise ConfigError("hedge budget must be positive")


class LatencyWindow:
    """Rolling window of observed shard-call latencies (simulated ms).

    Pure python and order-deterministic: the threshold depends only on
    the sequence of observed latencies, which the deterministic event
    loop fixes.  Uses the same linear-interpolation percentile definition
    as numpy's default so thresholds match offline analysis.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigError("latency window size must be positive")
        self._size = size
        self._buf: List[float] = []
        self._next = 0

    def observe(self, latency_ms: float) -> None:
        """Record one completed call's latency."""
        if len(self._buf) < self._size:
            self._buf.append(latency_ms)
        else:  # ring overwrite, oldest first
            self._buf[self._next] = latency_ms
            self._next = (self._next + 1) % self._size

    def quantile(self, q: float) -> Optional[float]:
        """The q-th percentile of the window, or None while empty."""
        if not self._buf:
            return None
        data = sorted(self._buf)
        rank = (len(data) - 1) * (q / 100.0)
        lo = int(rank)
        hi = min(lo + 1, len(data) - 1)
        frac = rank - lo
        return data[lo] + (data[hi] - data[lo]) * frac


class HealthTracker:
    """Per-node consecutive-failure counters and the ejected set."""

    def __init__(self, num_nodes: int, policy: HealthPolicy) -> None:
        if num_nodes <= 0:
            raise ConfigError("need at least one node")
        self.policy = policy
        self._fails = [0] * num_nodes
        self._ejected: Set[int] = set()
        self.ejections = 0
        self.probes = 0

    def is_ejected(self, node: int) -> bool:
        """Whether the router currently refuses to route to ``node``."""
        return node in self._ejected

    def record_failure(self, node: int) -> bool:
        """Count one failed call; returns True if this ejects the node."""
        if node in self._ejected:
            return False
        self._fails[node] += 1
        if self._fails[node] >= self.policy.eject_after:
            self._ejected.add(node)
            self.ejections += 1
            return True
        return False

    def record_success(self, node: int) -> None:
        """A call succeeded: clean slate (also re-admits, belt-and-braces)."""
        self._fails[node] = 0
        self._ejected.discard(node)

    def record_probe(self, node: int, reachable: bool) -> bool:
        """Account one probe of an ejected node; True if re-admitted."""
        self.probes += 1
        if reachable:
            self._fails[node] = 0
            self._ejected.discard(node)
            return True
        return False


class Router:
    """Replica selection over a shard map, health- and policy-aware.

    ``load_of(node, now_ms)`` estimates a node's backlog for the
    ``least_loaded`` policy (the cluster passes its earliest-core-free
    estimate); it is unused under ``round_robin``.

    ``on_decision`` is the tracing seam: when set (the cluster wires it
    up for observed runs), every :meth:`choose` reports its verdict as
    ``on_decision(ctx, shard, chosen, eligible_count, now_ms, load_ms)``,
    where ``ctx`` is whatever trace context the caller threaded through —
    the router is the only place that knows how many replicas were
    actually eligible after health filtering — and ``load_ms`` is the
    backlog estimate of the chosen node at decision time (None under
    ``round_robin`` or when nothing was chosen).  Unset, the cost is one
    ``is None`` branch per decision.
    """

    def __init__(
        self,
        policy: str,
        health: HealthTracker,
        load_of: Optional[Callable[[int, float], float]] = None,
        on_decision: Optional[Callable] = None,
    ) -> None:
        if policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {policy!r}; known: {ROUTING_POLICIES}"
            )
        if policy == "least_loaded" and load_of is None:
            raise ConfigError("least_loaded routing needs a load estimator")
        self.policy = policy
        self.health = health
        self._load_of = load_of
        self.on_decision = on_decision
        self._rr: Dict[int, int] = {}

    def choose(
        self,
        shard: int,
        replicas: Sequence[int],
        tried: Set[int],
        now_ms: float,
        ctx: Optional[object] = None,
    ) -> Optional[int]:
        """Pick the replica for one shard-call attempt, or None.

        Never returns a node in ``tried`` (each attempt of one shard call
        goes to a distinct replica — this is what deduplicates hedges and
        bounds failover) nor an ejected node.  Returns None when no
        routable replica remains.  ``ctx`` is passed through verbatim to
        ``on_decision`` so callers can attribute the decision to a span.
        """
        eligible = [
            n for n in replicas
            if n not in tried and not self.health.is_ejected(n)
        ]
        chosen: Optional[int] = None
        if eligible:
            if self.policy == "round_robin":
                start = self._rr.get(shard, 0) % len(replicas)
                for k in range(len(replicas)):
                    node = replicas[(start + k) % len(replicas)]
                    if node in eligible:
                        self._rr[shard] = (start + k + 1) % len(replicas)
                        chosen = node
                        break
            else:
                # least_loaded: smallest backlog estimate, id breaks ties.
                assert self._load_of is not None
                chosen = min(
                    eligible, key=lambda n: (self._load_of(n, now_ms), n)
                )
        if self.on_decision is not None:
            load = (
                self._load_of(chosen, now_ms)
                if chosen is not None and self._load_of is not None
                else None
            )
            self.on_decision(ctx, shard, chosen, len(eligible), now_ms, load)
        return chosen
