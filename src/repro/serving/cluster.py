"""Fleet-scale serving: a sharded, replicated cluster of ServerSim nodes.

The paper's framing is at-scale CPU serving; this module builds the
distribution layer the single-box simulator lacks.  A cluster is a
composition of N independent node worlds — each one the same FIFO M/G/c
core model as :class:`repro.serving.server.ServerSim`, with its own
seeded service stream and its own :class:`DegradationController` — glued
together by a front-end :class:`repro.serving.router.Router`:

* **Sharding** — the embedding tables are split into ``num_shards``
  shards placed on nodes with a configurable replication factor
  (:class:`ShardMap`).  Placement is ``striped`` (shard *s* on nodes
  ``s, s+1, ... mod N``) or ``hotness``-aware: shards sorted by their
  Zipf popularity land on nodes sorted by cache capacity, so the hottest
  tables sit where the LLC is largest — the cluster-level analogue of the
  paper's cache-aware table placement.
* **Gather/reduce** — each request fans out into ``gather_width``
  hotness-weighted shard lookups, each a network call costing ``hop_ms``
  per direction (the NUMA/network-hop term); the request completes when
  its last shard call returns.
* **Resilience** — node-scoped faults (:class:`repro.serving.faults.
  ClusterFaultPlan`) crash, partition, or slow whole nodes.  The router
  ejects nodes after consecutive failures, probes them back in, fails
  gathers over to surviving replicas, and hedges stragglers; when a
  shard is unreachable on every replica the request is served *partial*
  (outcome ``degraded`` — degraded recall, not an error) rather than
  failed outright.

Determinism follows the repo-wide discipline: every random quantity
derives from ``SeedSequence([seed, stream, ...])`` — the gather pattern
from ``(seed, gather-stream)`` by request index, node service times from
``(seed, service-stream, node)`` by submission index — never from wall
clocks or thread timing, so a cluster run is byte-identical across
hosts, runs, and ``--jobs``.

A 1-node, replication-1 cluster with no node faults *is* the bare
server: :meth:`ClusterSim.run` delegates wholesale to ``ServerSim`` and
returns its byte-identical result (kept on :attr:`ClusterResult.local`),
which is what locks the ``ServerSim`` refactor against regressions.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from ..mem.hierarchy import get_default_engine
from ..obs import hooks as obs_hooks
from ..obs.fleet import FleetTrace
from ..obs.metrics import Histogram
from .faults import ClusterFaultPlan, FaultPlan
from .router import HealthPolicy, HealthTracker, HedgePolicy, LatencyWindow, Router
from .router import ROUTING_POLICIES
from .server import (
    DEFAULT_SERVICE_CV,
    OUTCOME_COMPLETED,
    OUTCOME_SHED,
    ServerResult,
    ServerSim,
    ServingPolicy,
    lognormal_services,
)
from .stats import safe_mean, safe_percentile, safe_ratio

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .degradation import DegradationController

__all__ = [
    "CLUSTER_OUTCOME_NAMES",
    "ClusterConfig",
    "ClusterResult",
    "ClusterSim",
    "NodeStats",
    "PLACEMENTS",
    "ShardMap",
]

#: Shard-placement strategies.
PLACEMENTS = ("striped", "hotness")

#: Per-request cluster outcome codes (indices into CLUSTER_OUTCOME_NAMES).
CL_COMPLETED = 0
CL_DEGRADED = 1
CL_SHED = 2
CL_FAILED = 3
CLUSTER_OUTCOME_NAMES = ("completed", "degraded", "shed", "failed")

#: Sub-stream tags (disjoint from the FaultPlan streams).
_STREAM_GATHER = 101
_STREAM_NODE_SERVICE = 102

#: Event kinds, ordered so that at equal timestamps a crash kills
#: in-flight calls before their responses deliver, deliveries beat the
#: hedge timer (no hedging a call that just landed), and probes run last.
_EV_CRASH = 0
_EV_DELIVER = 1
_EV_ARRIVE = 2
_EV_HEDGE = 3
_EV_TIMEOUT = 4
_EV_PROBE = 5

#: Node service draws are replenished in chunks (vectorized, still
#: consumed strictly in submission order so the stream is stable).
_DRAW_CHUNK = 1024


def _inf_percentile(finite_sorted_or_not: np.ndarray, total: int, q: float) -> float:
    """Linear-interpolation percentile of ``total`` values of which only
    ``finite_sorted_or_not`` are finite (the rest are ``+inf``).

    Matches ``np.percentile`` semantics without the NaN that interpolating
    between two infinities produces.  0.0 with no values at all.
    """
    if total <= 0:
        return 0.0
    finite = np.sort(np.asarray(finite_sorted_or_not, dtype=float))
    rank = (total - 1) * (q / 100.0)
    if rank > finite.size - 1:
        return float("inf")
    lo = int(rank)
    hi = min(lo + 1, finite.size - 1)
    frac = rank - lo
    return float(finite[lo] + (finite[hi] - finite[lo]) * frac)


@dataclass(frozen=True)
class ClusterConfig:
    """Topology, policies, and fault scenario of one cluster simulation.

    ``mean_service_ms`` is the mean of a *single shard call* on an
    unloaded, cache-rich node; the effective per-call mean grows with the
    shard/cache mismatch term ``1 + miss_penalty * hotness * (1 -
    cache_score)`` (hot shard on a cache-poor node pays the most, which
    is what makes hotness-aware placement win).

    ``local_fault_plan`` / ``local_policy`` / ``controller_factory``
    configure the per-node resilient loop; core-level fault plans are
    only accepted on the 1-node delegation path (a multi-node cluster's
    failure domain is the node).
    """

    num_nodes: int = 4
    cores_per_node: int = 4
    mean_service_ms: float = 1.0
    service_cv: float = DEFAULT_SERVICE_CV
    num_shards: int = 8
    replication: int = 2
    gather_width: int = 2
    hop_ms: float = 0.1
    call_timeout_ms: float = 50.0
    deadline_ms: Optional[float] = None
    max_outstanding: Optional[int] = None
    placement: str = "striped"
    routing: str = "least_loaded"
    hedge: Optional[HedgePolicy] = None
    health: HealthPolicy = field(default_factory=HealthPolicy)
    faults: Optional[ClusterFaultPlan] = None
    hotness_alpha: float = 1.1
    miss_penalty: float = 1.0
    cache_scores: Optional[Tuple[float, ...]] = None
    partial_results: bool = True
    seed: int = 0
    engine: Optional[str] = None
    label: Optional[str] = None
    local_fault_plan: Optional[FaultPlan] = None
    local_policy: Optional[ServingPolicy] = None
    controller_factory: Optional[Callable[[int], "DegradationController"]] = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigError("need at least one node")
        if self.cores_per_node <= 0:
            raise ConfigError("need at least one core per node")
        if self.mean_service_ms <= 0:
            raise ConfigError("mean service time must be positive")
        if self.num_shards <= 0:
            raise ConfigError("need at least one shard")
        if not 1 <= self.replication <= self.num_nodes:
            raise ConfigError(
                "replication factor must be in [1, num_nodes]"
            )
        if not 1 <= self.gather_width <= self.num_shards:
            raise ConfigError("gather width must be in [1, num_shards]")
        if self.hop_ms < 0:
            raise ConfigError("hop latency must be non-negative")
        if self.call_timeout_ms <= 0:
            raise ConfigError("call timeout must be positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigError("deadline must be positive")
        if self.max_outstanding is not None and self.max_outstanding <= 0:
            raise ConfigError("outstanding bound must be positive")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; known: {PLACEMENTS}"
            )
        if self.routing not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.routing!r}; "
                f"known: {ROUTING_POLICIES}"
            )
        if self.hotness_alpha <= 0:
            raise ConfigError("hotness alpha must be positive")
        if self.miss_penalty < 0:
            raise ConfigError("miss penalty must be non-negative")
        if self.cache_scores is not None:
            if len(self.cache_scores) != self.num_nodes:
                raise ConfigError("need one cache score per node")
            if any(not 0.0 <= s <= 1.0 for s in self.cache_scores):
                raise ConfigError("cache scores must be in [0, 1]")
        if self.engine is not None and self.engine not in ("fast", "reference"):
            raise ConfigError(
                f"unknown serving engine {self.engine!r}; "
                "expected 'fast' or 'reference'"
            )

    @property
    def is_single_box(self) -> bool:
        """Whether :meth:`ClusterSim.run` delegates to a bare ServerSim."""
        return (
            self.num_nodes == 1
            and self.replication == 1
            and (self.faults is None or self.faults.is_empty)
        )

    def node_cache_scores(self) -> np.ndarray:
        """Per-node cache capacity scores (given, or linspace 1.0 -> 0.5)."""
        if self.cache_scores is not None:
            return np.asarray(self.cache_scores, dtype=float)
        if self.num_nodes == 1:
            return np.ones(1)
        return np.linspace(1.0, 0.5, self.num_nodes)


class ShardMap:
    """Shard -> replica placement plus the Zipf hotness profile."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        s = np.arange(config.num_shards, dtype=float)
        weights = 1.0 / np.power(s + 1.0, config.hotness_alpha)
        #: Normalized popularity per shard (shard id = popularity rank).
        self.hotness = weights / weights.sum()
        self.cache_scores = config.node_cache_scores()
        self.replicas: List[List[int]] = self._place()

    def _place(self) -> List[List[int]]:
        cfg = self.config
        if cfg.placement == "striped":
            return [
                [(s + r) % cfg.num_nodes for r in range(cfg.replication)]
                for s in range(cfg.num_shards)
            ]
        # Hotness-aware: walk shards hottest-first; each replica goes to
        # the least-loaded node (by assigned hotness), ties broken toward
        # the larger cache — so the hottest shards claim the cache-rich
        # nodes first and load stays balanced.
        order = sorted(
            range(cfg.num_shards), key=lambda s: (-self.hotness[s], s)
        )
        load = [0.0] * cfg.num_nodes
        placed: Dict[int, List[int]] = {}
        for shard in order:
            chosen: List[int] = []
            for _ in range(cfg.replication):
                node = min(
                    (n for n in range(cfg.num_nodes) if n not in chosen),
                    key=lambda n: (load[n], -self.cache_scores[n], n),
                )
                chosen.append(node)
                load[node] += float(self.hotness[shard]) / cfg.replication
            placed[shard] = chosen
        return [placed[s] for s in range(cfg.num_shards)]

    def call_multiplier(self, shard: int, node: int) -> float:
        """Service inflation of one shard call on one node.

        Hot shard on a cache-poor node pays ``1 + miss_penalty * hotness
        * (1 - cache_score)`` (relative hotness normalized so the hottest
        shard has weight 1).
        """
        rel = float(self.hotness[shard] / self.hotness.max())
        return 1.0 + self.config.miss_penalty * rel * (
            1.0 - float(self.cache_scores[node])
        )

    def gather_shards(self, num_requests: int) -> np.ndarray:
        """Per-request gather sets: ``(n, gather_width)`` distinct shards.

        Hotness-weighted sampling without replacement via Gumbel top-k,
        drawn in one vectorized pass from the gather stream so request
        *i*'s shards depend only on ``(seed, i)``.
        """
        cfg = self.config
        if cfg.gather_width == cfg.num_shards:
            return np.tile(
                np.arange(cfg.num_shards, dtype=np.int64), (num_requests, 1)
            )
        rng = np.random.default_rng(
            np.random.SeedSequence([cfg.seed, _STREAM_GATHER])
        )
        keys = np.log(self.hotness)[None, :] + rng.gumbel(
            size=(num_requests, cfg.num_shards)
        )
        top = np.argpartition(-keys, cfg.gather_width - 1, axis=1)
        return np.ascontiguousarray(top[:, : cfg.gather_width])


@dataclass
class NodeStats:
    """Aggregate accounting of one node over a cluster run."""

    node: int
    calls: int
    lost_calls: int
    busy_ms: float
    utilization: float
    final_degradation_level: int


class _NodeWorld:
    """One node's incremental FIFO M/G/c world inside the cluster loop.

    The same core model as ``ServerSim``'s plain path, driven one call
    at a time: submissions arrive in non-decreasing time order (the
    global event loop guarantees it), each call is assigned to the
    earliest-free core, and its completion is known at submission.  The
    per-node degradation controller is fed lazily: completions are
    drained up to each new call's start time before its scale is
    sampled, so control decisions only ever see the past.
    """

    def __init__(self, node: int, config: ClusterConfig) -> None:
        self.node = node
        self.config = config
        self.cores: List[Tuple[float, int]] = [
            (0.0, c) for c in range(config.cores_per_node)
        ]
        heapq.heapify(self.cores)
        self._rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, _STREAM_NODE_SERVICE, node])
        )
        self._pool = np.empty(0)
        self._pool_i = 0
        self.controller = (
            config.controller_factory(node)
            if config.controller_factory is not None
            else None
        )
        self._pending: List[Tuple[float, float]] = []  # (completion, latency)
        self.calls = 0
        self.lost_calls = 0
        self.busy_ms = 0.0

    def _draw(self) -> float:
        if self._pool_i >= self._pool.size:
            self._pool = lognormal_services(
                self.config.mean_service_ms,
                _DRAW_CHUNK,
                self._rng,
                cv=self.config.service_cv,
            )
            self._pool_i = 0
        value = float(self._pool[self._pool_i])
        self._pool_i += 1
        return value

    def backlog(self, now_ms: float) -> float:
        """Earliest-core-free estimate for least-loaded routing."""
        return max(0.0, self.cores[0][0] - now_ms)

    def submit(
        self, t_work: float, multiplier: float, plan: Optional[ClusterFaultPlan]
    ) -> Tuple[int, float, float, float]:
        """Run one shard call; returns ``(core, start, completion, slow)``.

        ``slow`` is the fault-plan slowdown factor in effect at the call's
        start — the observability layer uses it to carve the contention
        penalty out of the service segment.
        """
        if self.controller is not None:
            while self._pending and self._pending[0][0] <= t_work:
                done, latency = heapq.heappop(self._pending)
                self.controller.observe(done, latency)
        scale = self.controller.scale() if self.controller is not None else 1.0
        free_at, core = heapq.heappop(self.cores)
        start = max(t_work, free_at)
        slow = plan.slow_factor(self.node, start) if plan is not None else 1.0
        service = self._draw() * multiplier * slow * scale
        completion = start + service
        heapq.heappush(self.cores, (completion, core))
        self.calls += 1
        self.busy_ms += service
        if self.controller is not None:
            heapq.heappush(self._pending, (completion, completion - t_work))
        return core, start, completion, slow

    def crash(self, until_ms: float) -> None:
        """Hard kill: drop queued work, restart cold at ``until_ms``."""
        self.cores = [
            (until_ms, c) for c in range(self.config.cores_per_node)
        ]
        heapq.heapify(self.cores)
        self._pending = []
        if self.config.controller_factory is not None:
            # The restarted process starts at the base level; the old
            # controller's history dies with the node.
            self.controller = self.config.controller_factory(self.node)

    @property
    def final_level(self) -> int:
        return self.controller.level if self.controller is not None else 0


@dataclass
class ClusterResult:
    """Cluster-level outcomes, latencies, and resilience accounting.

    ``latencies_ms`` covers **completed** (full-quality) requests;
    ``degraded_latencies_ms`` the partial results.  ``request_latency_ms``
    has one entry per offered request — the served latency for completed
    and degraded requests, ``+inf`` for shed/failed ones — which is what
    :meth:`effective_percentile` ranks so an unreplicated cluster losing
    a node shows an unbounded tail rather than a rosy
    completed-only percentile.
    """

    outcomes: np.ndarray
    latencies_ms: np.ndarray
    degraded_latencies_ms: np.ndarray
    request_latency_ms: np.ndarray
    num_nodes: int
    duration_ms: float
    deadline_ms: Optional[float]
    node_stats: List[NodeStats] = field(default_factory=list)
    failovers: int = 0
    hedges_issued: int = 0
    hedges_won: int = 0
    hedges_wasted: int = 0
    hedges_failed: int = 0
    ejections: int = 0
    probes: int = 0
    calls_failed: int = 0
    partition_failures: int = 0
    latency_hist: Optional[Histogram] = None
    local: Optional[ServerResult] = None

    # -- outcome accounting --------------------------------------------------

    def outcome_count(self, name: str) -> int:
        """Number of requests with the given cluster outcome name."""
        try:
            code = CLUSTER_OUTCOME_NAMES.index(name)
        except ValueError:
            raise ConfigError(
                f"unknown outcome {name!r}; known: {CLUSTER_OUTCOME_NAMES}"
            ) from None
        return int(np.count_nonzero(self.outcomes == code))

    @property
    def outcome_counts(self) -> Dict[str, int]:
        """Outcome name -> request count."""
        return {
            name: self.outcome_count(name) for name in CLUSTER_OUTCOME_NAMES
        }

    @property
    def offered_requests(self) -> int:
        return int(self.outcomes.size)

    @property
    def served_fraction(self) -> float:
        """Fraction of offered requests served (full or partial)."""
        served = self.outcome_count("completed") + self.outcome_count("degraded")
        return safe_ratio(served, self.offered_requests)

    # -- latency -------------------------------------------------------------

    def percentile(self, q: float) -> float:
        """Full-quality completion latency percentile; 0.0 when empty."""
        return safe_percentile(self.latencies_ms, q)

    @property
    def p50_ms(self) -> float:
        return self.percentile(50.0)

    @property
    def p95_ms(self) -> float:
        return self.percentile(95.0)

    @property
    def p99_ms(self) -> float:
        return self.percentile(99.0)

    @property
    def mean_ms(self) -> float:
        return safe_mean(self.latencies_ms)

    def effective_percentile(self, q: float) -> float:
        """Served-latency percentile over **all** offered requests.

        Unserved requests (shed, failed) rank as ``+inf``: a cluster that
        fails 6% of its requests has an infinite effective p95, which is
        the honest availability reading.  Degraded (partial) responses
        count at their latency — the service answered, with reduced
        recall.
        """
        finite = self.request_latency_ms[np.isfinite(self.request_latency_ms)]
        return _inf_percentile(finite, self.offered_requests, q)

    def quality_percentile(self, q: float) -> float:
        """Full-quality latency percentile over **all** offered requests.

        Every request that was not completed in full — degraded, shed, or
        failed — ranks as ``+inf``.  This is the SLA-grade metric: an
        unreplicated cluster that loses a node and serves 20% partials
        has an infinite quality p95 even though its survivors were fast.
        """
        return _inf_percentile(self.latencies_ms, self.offered_requests, q)

    @property
    def goodput(self) -> float:
        """Fraction of offered requests completed *fully* within deadline.

        Degraded (partial) results keep the service up but do not count
        as good — goodput is the paper-grade quality metric.
        """
        if self.deadline_ms is None:
            good = self.outcome_count("completed")
        else:
            good = int(
                np.count_nonzero(self.latencies_ms <= self.deadline_ms)
            )
        return safe_ratio(good, self.offered_requests)

    @property
    def mean_utilization(self) -> float:
        """Mean per-node utilization over the run."""
        return safe_mean(
            np.array([s.utilization for s in self.node_stats])
            if self.node_stats
            else np.empty(0)
        )


class ClusterSim:
    """The cluster event loop: router + N node worlds + fault plan."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        if not config.is_single_box:
            if config.local_fault_plan is not None and not config.local_fault_plan.is_empty:
                raise ConfigError(
                    "core-level fault plans only apply to a 1-node cluster; "
                    "use ClusterFaultPlan for node-scoped faults"
                )
            if config.local_policy is not None and not config.local_policy.is_null:
                raise ConfigError(
                    "per-box serving policies only apply to a 1-node "
                    "cluster; the router owns cluster admission control"
                )
        self.shard_map = ShardMap(config)

    # -- single-box delegation ----------------------------------------------

    def _run_local(
        self, arrivals_ms: np.ndarray, rng: np.random.Generator
    ) -> ClusterResult:
        cfg = self.config
        sim = ServerSim(
            mean_service_ms=cfg.mean_service_ms,
            num_cores=cfg.cores_per_node,
            service_cv=cfg.service_cv,
            fault_plan=cfg.local_fault_plan,
            policy=cfg.local_policy,
            controller=(
                cfg.controller_factory(0)
                if cfg.controller_factory is not None
                else None
            ),
            label=cfg.label,
            engine=cfg.engine,
        )
        local = sim.run(arrivals_ms, rng)
        n = local.offered_requests
        outcomes = np.zeros(n, dtype=np.int64)
        request_latency = np.full(n, np.inf)
        if local.outcomes is None:
            outcomes[:] = CL_COMPLETED
            request_latency[:] = local.latencies_ms
        else:
            outcomes[local.outcomes == OUTCOME_COMPLETED] = CL_COMPLETED
            outcomes[local.outcomes == OUTCOME_SHED] = CL_SHED
            timed_out = ~np.isin(
                local.outcomes, (OUTCOME_COMPLETED, OUTCOME_SHED)
            )
            outcomes[timed_out] = CL_FAILED
            request_latency[local.outcomes == OUTCOME_COMPLETED] = (
                local.latencies_ms
            )
        duration = (
            float(arrivals_ms[-1] - arrivals_ms[0]) if n > 1 else 0.0
        )
        stats = [
            NodeStats(
                node=0,
                calls=int(local.latencies_ms.size),
                lost_calls=0,
                busy_ms=float(local.services_ms.sum()),
                utilization=local.utilization,
                final_degradation_level=local.final_degradation_level,
            )
        ]
        return ClusterResult(
            outcomes=outcomes,
            latencies_ms=local.latencies_ms,
            degraded_latencies_ms=np.empty(0),
            request_latency_ms=request_latency,
            num_nodes=1,
            duration_ms=duration,
            deadline_ms=(
                cfg.deadline_ms
                if cfg.deadline_ms is not None
                else local.deadline_ms
            ),
            node_stats=stats,
            latency_hist=local.latency_hist,
            local=local,
        )

    # -- the cluster event loop ----------------------------------------------

    def run(
        self,
        arrivals_ms: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> ClusterResult:
        """Simulate the cluster against one arrival process.

        ``rng`` is consumed only on the single-box delegation path (so a
        1-node cluster matches ``simulate_server`` byte for byte); the
        multi-node loop draws everything from the config seed's streams.
        """
        if arrivals_ms.ndim != 1 or arrivals_ms.size == 0:
            raise ConfigError("need a non-empty 1-D arrival array")
        if np.any(np.diff(arrivals_ms) < 0):
            raise ConfigError("arrival times must be non-decreasing")
        cfg = self.config
        if cfg.is_single_box:
            if rng is None:
                rng = np.random.default_rng(
                    np.random.SeedSequence([cfg.seed, _STREAM_NODE_SERVICE, 0])
                )
            return self._run_local(arrivals_ms, rng)
        engine = cfg.engine if cfg.engine is not None else get_default_engine()
        if engine not in ("fast", "reference"):
            raise ConfigError(
                f"unknown serving engine {engine!r}; "
                "expected 'fast' or 'reference'"
            )
        return self._run_cluster(arrivals_ms)

    def _run_cluster(self, arrivals_ms: np.ndarray) -> ClusterResult:
        cfg = self.config
        plan = cfg.faults if cfg.faults is not None else ClusterFaultPlan()
        n = int(arrivals_ms.size)
        shards_of = self.shard_map.gather_shards(n)
        replicas = self.shard_map.replicas
        nodes = [_NodeWorld(i, cfg) for i in range(cfg.num_nodes)]
        health = HealthTracker(cfg.num_nodes, cfg.health)
        # Least-loaded routing sees only what a real front end sees: the
        # number of calls it has sent each node and not yet heard back
        # about (least-outstanding-requests), never node internals.
        inflight = [0] * cfg.num_nodes
        router = Router(
            cfg.routing,
            health,
            load_of=lambda node, now: float(inflight[node]),
        )
        window = (
            LatencyWindow(cfg.hedge.window) if cfg.hedge is not None else None
        )

        obs = obs_hooks.active()
        log = obs.requests if obs is not None else None
        run = (
            log.start_run(
                label=cfg.label if cfg.label else "cluster",
                num_cores=cfg.num_nodes * cfg.cores_per_node,
                num_requests=n,
                deadline_ms=cfg.deadline_ms,
            )
            if log is not None
            else None
        )
        # Distributed tracing: one span tree per request, root id equal
        # to the request-log exemplar id.  Held as None with hooks off so
        # the loop's only overhead is the same is-None branches the run
        # log already takes.
        trace = (
            FleetTrace(
                cfg.label if cfg.label else "cluster",
                run_index=run.index if run is not None else 0,
            )
            if obs is not None
            else None
        )
        if trace is not None:
            router.on_decision = (
                lambda ctx, shard, chosen, eligible, t, load: trace.route(
                    ctx[0], t, chosen, cfg.routing, eligible, ctx[1],
                    load_ms=load,
                )
            )

        # -- mutable run state -------------------------------------------
        outcomes = np.full(n, -1, dtype=np.int64)
        end_ms = np.zeros(n)
        req_remaining = np.zeros(n, dtype=np.int64)
        req_missing = np.zeros(n, dtype=np.int64)
        req_failovers = np.zeros(n, dtype=np.int64)
        req_hedges = np.zeros(n, dtype=np.int64)
        req_hedges_wasted = np.zeros(n, dtype=np.int64)
        req_partition = np.zeros(n, dtype=bool)
        req_node_fault = np.zeros(n, dtype=bool)
        req_nodes: List[Set[int]] = [set() for _ in range(n)] if run else []

        slots: Dict[int, "_Slot"] = {}
        attempts: Dict[int, "_Attempt"] = {}
        outstanding_on: List[Dict[int, float]] = [
            {} for _ in range(cfg.num_nodes)
        ]
        counters = {
            "failovers": 0,
            "hedges_issued": 0,
            "hedges_won": 0,
            "hedges_wasted": 0,
            "hedges_failed": 0,
            "calls_failed": 0,
            "partition_failures": 0,
        }
        outstanding_requests = 0

        events: List[tuple] = []
        seq = 0
        next_slot_id = 0
        next_attempt_id = 0

        def push(t: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (t, kind, seq, payload))
            seq += 1

        for node, windows in (
            (i, plan.crashes_for(i)) for i in range(cfg.num_nodes)
        ):
            for start, end in windows:
                push(start, _EV_CRASH, (node, end))
        for i in range(n):
            push(float(arrivals_ms[i]), _EV_ARRIVE, i)

        def hedge_delay() -> Optional[float]:
            if cfg.hedge is None or window is None:
                return None
            q = window.quantile(cfg.hedge.quantile)
            if q is None:  # no observations yet: nothing to hedge against
                return None
            return max(cfg.hedge.min_ms, q)

        def submit_attempt(slot: "_Slot", node: int, now: float, hedge: bool) -> None:
            nonlocal next_attempt_id
            aid = next_attempt_id
            next_attempt_id += 1
            att = _Attempt(aid, slot, node, now, hedge)
            attempts[aid] = att
            slot.tried.add(node)
            slot.outstanding += 1
            inflight[node] += 1
            if trace is not None:
                att.trace_id = trace.begin_attempt(
                    slot.trace_id, node, now, hedge
                )
            if run is not None:
                run.event(
                    slot.request,
                    "shard_call",
                    now,
                    node=node,
                    shard=slot.shard,
                    hedge=hedge,
                )
                req_nodes[slot.request].add(node)
            if plan.node_down(node, now):
                # Connection refused: the router learns at one hop.
                att.fail_cause = "node_fault"
                push(now + cfg.hop_ms, _EV_DELIVER, aid)
                return
            if plan.partitioned(node, now):
                # Swallowed by the partition: only the timeout resolves it.
                att.fail_cause = "partition"
                push(now + cfg.call_timeout_ms, _EV_TIMEOUT, aid)
                return
            core, start, completion, slow = nodes[node].submit(
                now + cfg.hop_ms, self.shard_map.call_multiplier(slot.shard, node),
                plan,
            )
            att.core = core
            att.start = start
            att.slow = slow
            att.completion = completion
            outstanding_on[node][aid] = completion
            deliver = completion + cfg.hop_ms
            if plan.partitioned(node, deliver):
                # The response would land inside a partition window: lost.
                att.fail_cause = "partition"
                push(now + cfg.call_timeout_ms, _EV_TIMEOUT, aid)
                return
            att.deliver = deliver
            push(deliver, _EV_DELIVER, aid)
            if deliver > now + cfg.call_timeout_ms:
                att.fail_cause = "timeout"
                push(now + cfg.call_timeout_ms, _EV_TIMEOUT, aid)
            if not hedge and cfg.hedge is not None:
                delay = hedge_delay()
                if delay is not None:
                    push(now + delay, _EV_HEDGE, slot.slot_id)

        def fail_attempt(att: "_Attempt", now: float, cause: str) -> None:
            """One attempt is dead; maybe fail over, maybe orphan the slot."""
            if att.resolved:
                return
            att.resolved = True
            attempts.pop(att.aid, None)
            outstanding_on[att.node].pop(att.aid, None)
            inflight[att.node] -= 1
            counters["calls_failed"] += 1
            if cause == "partition":
                counters["partition_failures"] += 1
            slot = att.slot
            slot.outstanding -= 1
            slot.fail_causes.add(cause)
            if trace is not None:
                trace.end_attempt(att.trace_id, now, "failed", cause=cause)
            if run is not None:
                run.event(
                    slot.request,
                    "call_failed",
                    now,
                    node=att.node,
                    shard=slot.shard,
                    cause=cause,
                    hedge=att.is_hedge,
                )
            if cause == "partition":
                req_partition[slot.request] = True
            elif cause == "node_fault":
                req_node_fault[slot.request] = True
            if health.record_failure(att.node):
                push(now + cfg.health.probe_interval_ms, _EV_PROBE, att.node)
            if slot.resolved:
                if att.is_hedge:
                    counters["hedges_failed"] += 1
                maybe_free_slot(slot)
                return
            if slot.outstanding > 0:
                # A sibling attempt (primary or hedge) is still racing.
                if att.is_hedge:
                    counters["hedges_failed"] += 1
                return
            target = router.choose(
                slot.shard, replicas[slot.shard], slot.tried, now,
                ctx=(slot.trace_id, "failover"),
            )
            if target is not None:
                counters["failovers"] += 1
                req_failovers[slot.request] += 1
                if run is not None:
                    run.event(
                        slot.request,
                        "failover",
                        now,
                        node=target,
                        shard=slot.shard,
                    )
                if att.is_hedge:
                    counters["hedges_failed"] += 1
                submit_attempt(slot, target, now, hedge=False)
                return
            if att.is_hedge:
                counters["hedges_failed"] += 1
            # No replica left: the shard is unreachable for this request.
            slot.missing = True
            slot.resolved = True
            if trace is not None:
                trace.end_slot(slot.trace_id, now, "missing")
            maybe_free_slot(slot)
            req_missing[slot.request] += 1
            finish_slot(slot.request, now)

        def maybe_free_slot(slot: "_Slot") -> None:
            # Bound memory on multi-million-request runs: a slot with no
            # attempts in flight and a settled outcome can never be
            # touched again (a stale hedge timer finds it absent).
            if slot.resolved and slot.outstanding == 0:
                slots.pop(slot.slot_id, None)

        def finish_slot(req: int, now: float) -> None:
            req_remaining[req] -= 1
            if req_remaining[req] > 0:
                return
            finalize_request(req, now)

        def finalize_request(req: int, now: float) -> None:
            nonlocal outstanding_requests
            missing = int(req_missing[req])
            width = int(shards_of.shape[1])
            if missing == 0:
                outcomes[req] = CL_COMPLETED
                kind = "complete"
            elif missing < width and cfg.partial_results:
                outcomes[req] = CL_DEGRADED
                kind = "degraded"
            else:
                outcomes[req] = CL_FAILED
                kind = "failed"
            end_ms[req] = now
            outstanding_requests -= 1
            if run is not None:
                run.event(req, kind, now, missing_shards=missing)
            if trace is not None:
                trace.end_request(
                    req,
                    now,
                    CLUSTER_OUTCOME_NAMES[int(outcomes[req])],
                    missing_shards=missing,
                )

        # -- main loop -----------------------------------------------------
        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _EV_CRASH:
                node, until = payload
                killed = list(outstanding_on[node].items())
                nodes[node].lost_calls += sum(
                    1 for _, completion in killed if completion > now
                )
                for aid, completion in killed:
                    att = attempts.get(aid)
                    outstanding_on[node].pop(aid, None)
                    if att is None or completion <= now:
                        continue  # response already left the node
                    fail_attempt(att, now, "node_fault")
                nodes[node].crash(until)
            elif kind == _EV_DELIVER:
                att = attempts.get(payload)
                if att is None or att.resolved:
                    continue
                slot = att.slot
                if att.fail_cause == "node_fault" and att.completion is None:
                    # Fail-fast bounce off a down node.
                    fail_attempt(att, now, "node_fault")
                    continue
                att.resolved = True
                attempts.pop(att.aid, None)
                outstanding_on[att.node].pop(att.aid, None)
                slot.outstanding -= 1
                inflight[att.node] -= 1
                health.record_success(att.node)
                if window is not None:
                    window.observe(now - att.submit_ms)
                if run is not None:
                    # The attempt's internal decomposition: on-node queue
                    # wait, service time, and the fault-plan slowdown in
                    # effect — the critical-path extractor's raw material.
                    run.event(
                        slot.request,
                        "call_ok",
                        now,
                        node=att.node,
                        shard=slot.shard,
                        latency_ms=now - att.submit_ms,
                        hedge=att.is_hedge,
                        queue_ms=att.start - (att.submit_ms + cfg.hop_ms),
                        service_ms=att.completion - att.start,
                        slow=att.slow,
                    )
                if slot.resolved:
                    if att.is_hedge:
                        counters["hedges_wasted"] += 1
                        req_hedges_wasted[slot.request] += 1
                    if trace is not None:
                        trace.end_attempt(
                            att.trace_id, now, "ok",
                            latency_ms=now - att.submit_ms, winner=False,
                            queue_ms=att.start - (att.submit_ms + cfg.hop_ms),
                            service_ms=att.completion - att.start,
                            slow=att.slow,
                        )
                    maybe_free_slot(slot)
                    continue
                slot.resolved = True
                if att.is_hedge:
                    counters["hedges_won"] += 1
                if trace is not None:
                    trace.end_attempt(
                        att.trace_id, now, "ok",
                        latency_ms=now - att.submit_ms, winner=True,
                        queue_ms=att.start - (att.submit_ms + cfg.hop_ms),
                        service_ms=att.completion - att.start,
                        slow=att.slow,
                    )
                    trace.end_slot(slot.trace_id, now, "ok")
                maybe_free_slot(slot)
                finish_slot(slot.request, now)
            elif kind == _EV_ARRIVE:
                i = payload
                if run is not None:
                    run.event(i, "arrive", now)
                if trace is not None:
                    trace.begin_request(i, now)
                if (
                    cfg.max_outstanding is not None
                    and outstanding_requests >= cfg.max_outstanding
                ):
                    outcomes[i] = CL_SHED
                    end_ms[i] = now
                    if run is not None:
                        run.event(i, "shed", now, depth=outstanding_requests)
                    if trace is not None:
                        trace.end_request(i, now, "shed")
                    continue
                outstanding_requests += 1
                width = int(shards_of.shape[1])
                req_remaining[i] = width
                for k in range(width):
                    shard = int(shards_of[i, k])
                    slot = _Slot(next_slot_id, i, shard)
                    next_slot_id += 1
                    slots[slot.slot_id] = slot
                    if trace is not None:
                        slot.trace_id = trace.begin_slot(i, k, shard, now)
                    target = router.choose(
                        shard, replicas[shard], slot.tried, now,
                        ctx=(slot.trace_id, "primary"),
                    )
                    if target is None:
                        slot.missing = True
                        slot.resolved = True
                        slot.fail_causes.add("node_fault")
                        if trace is not None:
                            trace.end_slot(slot.trace_id, now, "missing")
                        req_node_fault[i] = True
                        req_missing[i] += 1
                        finish_slot(i, now)
                        continue
                    submit_attempt(slot, target, now, hedge=False)
            elif kind == _EV_HEDGE:
                slot = slots.get(payload)
                if slot is None or slot.resolved:
                    continue
                if cfg.hedge is None or slot.hedges >= cfg.hedge.max_hedges:
                    continue
                target = router.choose(
                    slot.shard, replicas[slot.shard], slot.tried, now,
                    ctx=(slot.trace_id, "hedge"),
                )
                if target is None:
                    continue
                slot.hedges += 1
                counters["hedges_issued"] += 1
                req_hedges[slot.request] += 1
                if run is not None:
                    # q_ms: the latency-window quantile the hedge delay was
                    # racing (the fire-time estimate of the arming-time
                    # value) — lets the what-if engine re-time hedges under
                    # a different floor.
                    run.event(
                        slot.request, "hedge", now, node=target,
                        shard=slot.shard,
                        q_ms=window.quantile(cfg.hedge.quantile)
                        if window is not None else None,
                    )
                submit_attempt(slot, target, now, hedge=True)
                if slot.hedges < cfg.hedge.max_hedges:
                    delay = hedge_delay()
                    if delay is not None:
                        push(now + delay, _EV_HEDGE, slot.slot_id)
            elif kind == _EV_TIMEOUT:
                att = attempts.get(payload)
                if att is None or att.resolved:
                    continue
                fail_attempt(att, now, att.fail_cause or "timeout")
            else:  # _EV_PROBE
                node = payload
                if not health.is_ejected(node):
                    continue
                reachable = not plan.unreachable(node, now)
                if not health.record_probe(node, reachable):
                    push(now + cfg.health.probe_interval_ms, _EV_PROBE, node)

        # -- aggregate ------------------------------------------------------
        completed = outcomes == CL_COMPLETED
        degraded = outcomes == CL_DEGRADED
        latencies = (end_ms - arrivals_ms)[completed]
        degraded_lat = (end_ms - arrivals_ms)[degraded]
        request_latency = np.full(n, np.inf)
        request_latency[completed] = latencies
        request_latency[degraded] = degraded_lat
        duration = float(
            max(end_ms.max(), arrivals_ms[-1]) - arrivals_ms[0]
        )
        node_stats = [
            NodeStats(
                node=w.node,
                calls=w.calls,
                lost_calls=w.lost_calls,
                busy_ms=w.busy_ms,
                utilization=safe_ratio(
                    w.busy_ms, cfg.cores_per_node * duration
                ),
                final_degradation_level=w.final_level,
            )
            for w in nodes
        ]
        result = ClusterResult(
            outcomes=outcomes,
            latencies_ms=latencies,
            degraded_latencies_ms=degraded_lat,
            request_latency_ms=request_latency,
            num_nodes=cfg.num_nodes,
            duration_ms=duration,
            deadline_ms=cfg.deadline_ms,
            node_stats=node_stats,
            failovers=counters["failovers"],
            hedges_issued=counters["hedges_issued"],
            hedges_won=counters["hedges_won"],
            hedges_wasted=counters["hedges_wasted"],
            hedges_failed=counters["hedges_failed"],
            ejections=health.ejections,
            probes=health.probes,
            calls_failed=counters["calls_failed"],
            partition_failures=counters["partition_failures"],
        )
        hist = Histogram()
        hist.observe_many(latencies)
        result.latency_hist = hist
        if run is not None:
            fault_windows = plan.windows()
            for i in range(n):
                name = CLUSTER_OUTCOME_NAMES[int(outcomes[i])]
                cause = None
                if name in ("degraded", "failed"):
                    cause = "partition" if req_partition[i] else "node_fault"
                elif name == "completed":
                    if req_partition[i]:
                        cause = "partition"
                    elif req_node_fault[i]:
                        cause = "node_fault"
                touched = req_nodes[i]
                overlapping = [
                    wname
                    for wname, w_start, w_end, attrs in fault_windows
                    if attrs.get("node") in touched
                    and w_start <= end_ms[i]
                    and arrivals_ms[i] <= w_end
                ]
                run.add_record(
                    req=i,
                    arrival_ms=float(arrivals_ms[i]),
                    outcome=name,
                    end_ms=float(end_ms[i]),
                    cause=cause,
                    fault_windows=overlapping,
                    shards=[int(s) for s in shards_of[i]],
                    nodes=sorted(touched),
                    failovers=int(req_failovers[i]),
                    hedges=int(req_hedges[i]),
                    hedges_wasted=int(req_hedges_wasted[i]),
                )
            run.finish_custom(
                tracer=obs.tracer if obs is not None else None
            )
        if trace is not None:
            trace.finalize()
            trace.emit(obs.tracer)
        self._publish(result, plan, obs, run)
        return result

    def _publish(self, result: ClusterResult, plan, obs, run=None) -> None:
        """Cluster metrics + fault-window trace track (observed runs)."""
        if obs is None:
            return
        obs.metrics.counter("cluster.requests").inc(result.offered_requests)
        obs.metrics.counter("cluster.failovers").inc(result.failovers)
        obs.metrics.counter("cluster.hedges").inc(result.hedges_issued)
        obs.metrics.counter("cluster.hedges_won").inc(result.hedges_won)
        obs.metrics.counter("cluster.hedges_wasted").inc(result.hedges_wasted)
        obs.metrics.counter("cluster.ejections").inc(result.ejections)
        obs.metrics.counter("cluster.probes").inc(result.probes)
        obs.metrics.counter("cluster.calls_failed").inc(result.calls_failed)
        obs.metrics.gauge("cluster.nodes").set(result.num_nodes)
        lat_hist = obs.metrics.histogram("cluster.latency_ms")
        if run is not None:
            # Same three-way join as the single box: histogram bucket ->
            # exemplar id -> request-log line and trace span.
            ids = run.completed_ids()
            for k, value in enumerate(result.latencies_ms):
                if k < len(ids):
                    lat_hist.observe_exemplar(float(value), ids[k])
                else:  # run log truncated by its bound
                    lat_hist.observe(float(value))
        else:
            lat_hist.observe_many(result.latencies_ms)
        for stats in result.node_stats:
            obs.metrics.gauge(f"cluster.node{stats.node}.utilization").set(
                stats.utilization
            )
        if plan is not None and not plan.is_empty:
            tid = obs.tracer.new_sim_track("cluster.faults (ms)")
            for name, start, end, attrs in plan.windows():
                obs.tracer.add_sim_span(
                    name, "cluster.fault", start, end - start, tid=tid,
                    args=attrs,
                )


class _Slot:
    """One shard lookup of one request (primary + failovers + hedges)."""

    __slots__ = (
        "slot_id",
        "request",
        "shard",
        "resolved",
        "missing",
        "tried",
        "outstanding",
        "hedges",
        "fail_causes",
        "trace_id",
    )

    def __init__(self, slot_id: int, request: int, shard: int) -> None:
        self.slot_id = slot_id
        self.request = request
        self.shard = shard
        self.resolved = False
        self.missing = False
        self.tried: Set[int] = set()
        self.outstanding = 0
        self.hedges = 0
        self.fail_causes: Set[str] = set()
        self.trace_id: Optional[str] = None


class _Attempt:
    """One shard-call attempt in flight to one node."""

    __slots__ = (
        "aid",
        "slot",
        "node",
        "submit_ms",
        "is_hedge",
        "resolved",
        "core",
        "start",
        "slow",
        "completion",
        "deliver",
        "fail_cause",
        "trace_id",
    )

    def __init__(
        self, aid: int, slot: _Slot, node: int, submit_ms: float, is_hedge: bool
    ) -> None:
        self.aid = aid
        self.slot = slot
        self.node = node
        self.submit_ms = submit_ms
        self.is_hedge = is_hedge
        self.resolved = False
        self.core: Optional[int] = None
        self.start: Optional[float] = None
        self.slow: float = 1.0
        self.completion: Optional[float] = None
        self.deliver: Optional[float] = None
        self.fail_cause: Optional[str] = None
        self.trace_id: Optional[str] = None
