"""Load generation: Poisson arrivals (Section 6.5's methodology).

"Similar to [17], we model a load generator that generates requests with a
Poisson distribution" — i.e. exponential inter-arrival times around a mean
arrival time, swept from the SLA-compliant region into saturation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["poisson_arrivals"]


def poisson_arrivals(
    mean_interarrival_ms: float,
    num_requests: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Arrival timestamps (ms) of a Poisson request stream.

    ``mean_interarrival_ms`` is the paper's x-axis in Fig 17 ("arrival
    time"): smaller means a higher offered load.
    """
    if mean_interarrival_ms <= 0:
        raise ConfigError("mean inter-arrival time must be positive")
    if num_requests <= 0:
        raise ConfigError("request count must be positive")
    gaps = rng.exponential(mean_interarrival_ms, size=num_requests)
    return np.cumsum(gaps)
