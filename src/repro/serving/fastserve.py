"""Batched serving engine — the "fast" counterpart of the event loops.

The reference serving paths in :mod:`repro.serving.server` spend their
time in per-request Python work: heap operations against an O(n)
event heap and numpy scalar indexing (each ``arr[i]`` materializes a new
scalar object).  This module vectorizes the same computations the way
:class:`repro.mem.fastcache.FastCache` batched the memory hierarchy —
waves of numpy work where request order provably cannot change, plain
C-speed float loops where it can — while producing **byte-identical**
results (enforced by the differential tests in
``tests/test_serving_engine.py``):

* :func:`dispatch_plain` — FIFO M/G/c dispatch for the happy path.
  Single-core chains are an exact python-float recurrence; multi-core
  dispatch runs *speculative waves*: the next ``c`` requests are assigned
  to the ``c`` cores in heap order (``lexsort`` over ``(free, core)`` is
  exactly the heap's total order), and the wave is committed only up to
  the first position where a freshly computed completion could overtake a
  later core's free time — the only way the real heap could disagree.
  Under load the full wave commits; when speculation stops paying the
  dispatcher falls back to a python-float heap loop (still well ahead of
  numpy scalar indexing).

* :func:`resilient_events` — the resilient event loop with the O(n)
  static arrival schedule *merged* instead of heaped: arrivals enter the
  event stream through a sorted-array pointer while only dynamic events
  (core releases, timeouts, retries) live in the heap, which stays
  O(cores + queued timeouts).  Event sequence numbers replicate the
  reference numbering (cores ``0..c-1``, static arrivals ``c..c+n-1``,
  runtime events counting up from ``c+n``) so every tie breaks the same
  way.

Float discipline: every arithmetic operation (``max``, add, multiply)
is performed on IEEE-754 doubles in the same order as the reference
loop, so results are bit-equal — python ``float`` and ``np.float64``
share the representation.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["dispatch_plain", "resilient_events"]

#: Stop speculating when fewer than 2 requests commit per wave on average.
_WAVE_MIN_PAYOFF = 2
#: Waves to observe before judging speculation efficiency.
_WAVE_PROBATION = 16
#: Below this core count a wave is too small to amortize its ~10 numpy
#: dispatches; the python-float heap loop wins outright.
_WAVE_MIN_CORES = 16


def dispatch_plain(
    arrivals_ms: np.ndarray, services: np.ndarray, num_cores: int
) -> Tuple[np.ndarray, np.ndarray]:
    """FIFO M/G/c dispatch; byte-identical to the reference heap loop.

    Returns ``(starts, core_ids)`` exactly as the loop in
    ``_simulate_fast`` would have produced them.
    """
    n = arrivals_ms.size
    starts = np.empty(n)
    core_ids = np.empty(n, dtype=np.int64)
    if num_cores == 1:
        # start_i = max(arrival_i, completion_{i-1}) is a pure chain; run
        # it over python floats (bit-equal IEEE doubles, ~10x cheaper per
        # step than heap + numpy scalar indexing).
        starts_l: List[float] = []
        append = starts_l.append
        free = 0.0
        for a, s in zip(arrivals_ms.tolist(), services.tolist()):
            if free < a:
                free = a
            append(free)
            free += s
        starts[:] = starts_l
        core_ids.fill(0)
        return starts, core_ids

    free_t = np.zeros(num_cores)
    free_c = np.arange(num_cores, dtype=np.int64)
    i = 0
    waves = 0
    committed = 0
    while i < n and num_cores >= _WAVE_MIN_CORES:
        # Heap pop order over c cores == ascending (free time, core id).
        order = np.lexsort((free_c, free_t))
        m = min(num_cores, n - i)
        ft = free_t[order[:m]]
        st = np.maximum(arrivals_ms[i : i + m], ft)
        comp = st + services[i : i + m]
        if m > 1:
            # Dispatch k is speculative: the real heap would hand it the
            # k-th earliest core only if no completion pushed by
            # dispatches 0..k-1 beats that core's free time (strictly —
            # an equal time would tie-break on core id, so it commits
            # only the unambiguous prefix).
            ok = np.minimum.accumulate(comp[: m - 1]) > ft[1:]
            k = m if ok.all() else int(np.argmin(ok)) + 1
        else:
            k = 1
        sel = order[:k]
        starts[i : i + k] = st[:k]
        core_ids[i : i + k] = sel
        free_t[sel] = comp[:k]
        i += k
        waves += 1
        committed += k
        if waves >= _WAVE_PROBATION and committed < _WAVE_MIN_PAYOFF * waves:
            break
    if i < n:
        # Speculation is not paying (light/bursty load): finish with a
        # python-float heap seeded from the current core state.
        heap = list(zip(free_t.tolist(), free_c.tolist()))
        heapq.heapify(heap)
        pop, push = heapq.heappop, heapq.heappush
        st_l: List[float] = []
        id_l: List[int] = []
        st_append, id_append = st_l.append, id_l.append
        arr_l = arrivals_ms[i:].tolist()
        svc_l = services[i:].tolist()
        for a, s in zip(arr_l, svc_l):
            free_at, core = pop(heap)
            start = a if a > free_at else free_at
            st_append(start)
            id_append(core)
            push(heap, (start + s, core))
        starts[i:] = st_l
        core_ids[i:] = id_l
    return starts, core_ids


#: Event kinds, mirrored from the server module (import cycle avoidance).
_EV_FREE = 0
_EV_ARRIVE = 1
_EV_TIMEOUT = 2

_OUTCOME_COMPLETED = 0
_OUTCOME_SHED = 1
_OUTCOME_TIMED_OUT = 2


def resilient_events(
    arrivals: np.ndarray,
    base_services: np.ndarray,
    strag: np.ndarray,
    num_cores: int,
    plan,
    policy,
    controller,
    jitter_rng: np.random.Generator,
    run,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Resilient event loop over python floats and a dynamic-only heap.

    Returns ``(outcome, retry_count, starts, services, core_of)`` as numpy
    arrays, byte-identical to the reference ``_simulate_resilient`` loop.
    The static arrival schedule is consumed through a pointer into the
    (already sorted) arrival array; only dynamic events are heaped.
    """
    n = arrivals.size
    arr_l = arrivals.tolist()
    svc_l = base_services.tolist()
    strag_l = strag.tolist()
    deadline_l = (
        (arrivals + policy.deadline_ms).tolist()
        if policy.deadline_ms is not None
        else None
    )
    timeout_ms = policy.timeout_ms
    max_retries = policy.max_retries
    max_depth = policy.max_queue_depth
    shed_expired = policy.shed_expired
    retry_backoff = policy.retry_backoff_ms
    retry_jitter = policy.retry_jitter
    jitter_draw = jitter_rng.random

    plan_active = not plan.is_empty
    core_down = plan.core_down
    next_available = plan.next_available
    service_multiplier = plan.service_multiplier

    outcome = [-1] * n
    retry_count = [0] * n
    in_queue = [False] * n
    started = [False] * n
    starts = [0.0] * n
    services = [0.0] * n
    core_of = [-1] * n

    # Reference seq numbering: FREE(core) get 0..c-1, static arrivals
    # c..c+n-1, runtime pushes count up from c+n.
    events: List[tuple] = [
        (next_available(core, 0.0), _EV_FREE, core, core)
        for core in range(num_cores)
    ]
    heapq.heapify(events)
    heap_push = heapq.heappush
    heap_pop = heapq.heappop
    seq = num_cores + n
    sp = 0  # static arrival pointer
    next_static: Optional[tuple] = (
        (arr_l[0], _EV_ARRIVE, num_cores, 0) if n else None
    )

    running = {}  # core -> request currently on it
    idle: List[tuple] = []  # heap of (idle-since, core)
    queue = []  # FIFO via head index (amortized O(1) popleft)
    qhead = 0
    depth = 0
    ctrl = controller
    logging = run is not None

    while events or next_static is not None:
        if next_static is not None and (
            not events or next_static < events[0]
        ):
            now, kind, _, payload = next_static
            sp += 1
            next_static = (
                (arr_l[sp], _EV_ARRIVE, num_cores + sp, sp) if sp < n else None
            )
        else:
            now, kind, _, payload = heap_pop(events)
        if kind == _EV_FREE:
            core = payload
            finished = running.pop(core, None)
            if finished is not None:
                outcome[finished] = _OUTCOME_COMPLETED
                if logging:
                    run.event(finished, "complete", now, core=core)
                if ctrl is not None:
                    ctrl.observe(now, now - arr_l[finished])
            if plan_active and core_down(core, now):
                heap_push(events, (next_available(core, now), _EV_FREE, seq, core))
                seq += 1
            else:
                heap_push(idle, (now, core))
                # -- dispatch (inlined: the loop's single hot call) ------
                while qhead < len(queue) and idle:
                    _, icore = idle[0]
                    if plan_active and core_down(icore, now):
                        heap_pop(idle)
                        heap_push(
                            events,
                            (next_available(icore, now), _EV_FREE, seq, icore),
                        )
                        seq += 1
                        continue
                    i = queue[qhead]
                    if not in_queue[i]:  # lazily cancelled by a timeout
                        qhead += 1
                        continue
                    heap_pop(idle)
                    qhead += 1
                    in_queue[i] = False
                    depth -= 1
                    started[i] = True
                    scale = ctrl.scale() if ctrl is not None else 1.0
                    fault_mult = (
                        service_multiplier(icore, now) if plan_active else 1.0
                    )
                    svc = svc_l[i] * scale * fault_mult
                    starts[i] = now
                    services[i] = svc
                    core_of[i] = icore
                    running[icore] = i
                    if logging:
                        run.event(
                            i,
                            "dispatch",
                            now,
                            core=icore,
                            level=ctrl.level if ctrl is not None else None,
                            scheme=(
                                ctrl.ladder[ctrl.level].name
                                if ctrl is not None
                                else None
                            ),
                            fault_mult=float(fault_mult),
                            straggler_mult=float(strag_l[i]),
                            scale=float(scale),
                        )
                    heap_push(events, (now + svc, _EV_FREE, seq, icore))
                    seq += 1
        elif kind == _EV_ARRIVE:
            i = payload
            if logging:
                if retry_count[i] > 0:
                    run.event(i, "retry_arrive", now, attempt=int(retry_count[i]))
                else:
                    run.event(i, "arrive", now)
            if shed_expired and deadline_l is not None and now >= deadline_l[i]:
                outcome[i] = _OUTCOME_TIMED_OUT
                if logging:
                    run.event(i, "expired", now)
            elif max_depth is not None and depth >= max_depth:
                outcome[i] = _OUTCOME_SHED
                if logging:
                    run.event(i, "shed", now, depth=depth)
            else:
                in_queue[i] = True
                queue.append(i)
                depth += 1
                if timeout_ms is not None:
                    heap_push(events, (now + timeout_ms, _EV_TIMEOUT, seq, i))
                    seq += 1
                if idle:
                    # -- dispatch (same inlined loop) --------------------
                    while qhead < len(queue) and idle:
                        _, icore = idle[0]
                        if plan_active and core_down(icore, now):
                            heap_pop(idle)
                            heap_push(
                                events,
                                (
                                    next_available(icore, now),
                                    _EV_FREE,
                                    seq,
                                    icore,
                                ),
                            )
                            seq += 1
                            continue
                        j = queue[qhead]
                        if not in_queue[j]:
                            qhead += 1
                            continue
                        heap_pop(idle)
                        qhead += 1
                        in_queue[j] = False
                        depth -= 1
                        started[j] = True
                        scale = ctrl.scale() if ctrl is not None else 1.0
                        fault_mult = (
                            service_multiplier(icore, now) if plan_active else 1.0
                        )
                        svc = svc_l[j] * scale * fault_mult
                        starts[j] = now
                        services[j] = svc
                        core_of[j] = icore
                        running[icore] = j
                        if logging:
                            run.event(
                                j,
                                "dispatch",
                                now,
                                core=icore,
                                level=ctrl.level if ctrl is not None else None,
                                scheme=(
                                    ctrl.ladder[ctrl.level].name
                                    if ctrl is not None
                                    else None
                                ),
                                fault_mult=float(fault_mult),
                                straggler_mult=float(strag_l[j]),
                                scale=float(scale),
                            )
                        heap_push(events, (now + svc, _EV_FREE, seq, icore))
                        seq += 1
        else:  # _EV_TIMEOUT
            i = payload
            if started[i] or outcome[i] >= 0 or not in_queue[i]:
                continue
            in_queue[i] = False
            depth -= 1
            if retry_count[i] < max_retries:
                retry_count[i] += 1
                backoff = retry_backoff * 2.0 ** (retry_count[i] - 1)
                backoff *= 1.0 + retry_jitter * float(jitter_draw())
                if logging:
                    run.event(
                        i,
                        "timeout_retry",
                        now,
                        attempt=int(retry_count[i]),
                        backoff_ms=float(backoff),
                    )
                heap_push(events, (now + backoff, _EV_ARRIVE, seq, i))
                seq += 1
            else:
                outcome[i] = _OUTCOME_TIMED_OUT
                if logging:
                    run.event(i, "timeout", now)
        if qhead > 4096 and qhead * 2 > len(queue):
            del queue[:qhead]
            qhead = 0

    return (
        np.array(outcome, dtype=np.int64),
        np.array(retry_count, dtype=np.int64),
        np.array(starts),
        np.array(services),
        np.array(core_of, dtype=np.int64),
    )
