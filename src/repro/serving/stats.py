"""Degenerate-input guards shared across serving aggregations.

Every serving-layer aggregate — a whole server, one pipeline, one cluster
node — faces the same degenerate inputs: no completed requests (empty
latency array), a single arrival (no offered rate), an all-shed node
(zero service time observed).  The repo-wide convention (matching
:meth:`repro.mem.stats.CacheStats.hit_rate`) is that degenerate inputs
yield ``0.0`` rather than an exception, ``NaN``, or a numpy warning.

Before the cluster layer each result type guarded its own fields ad hoc;
these helpers centralize the convention so multi-node aggregation (an
empty node, an all-shed node, a node that served exactly one request)
cannot re-introduce a division by zero in any one field.
"""

from __future__ import annotations

import numpy as np

__all__ = ["safe_mean", "safe_percentile", "safe_ratio"]


def safe_percentile(values: np.ndarray, q: float) -> float:
    """``np.percentile`` with the empty-input -> 0.0 convention."""
    arr = np.asarray(values)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def safe_mean(values: np.ndarray) -> float:
    """Arithmetic mean; 0.0 on an empty array (no NaN, no warning)."""
    arr = np.asarray(values)
    if arr.size == 0:
        return 0.0
    return float(np.mean(arr))


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``; 0.0 when the denominator is <= 0."""
    if denominator <= 0:
        return 0.0
    return float(numerator) / float(denominator)
