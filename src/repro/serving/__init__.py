"""At-scale inference serving simulation (Section 6.5).

Recommendation inference is user-facing and governed by SLAs (Table 1).
This subpackage reproduces the paper's tail-latency methodology: a Poisson
load generator (:mod:`repro.serving.workload`), a discrete-event multi-core
inference server (:mod:`repro.serving.server`), and percentile / SLA-region
analysis (:mod:`repro.serving.latency`, :mod:`repro.serving.sla`) — plus a
resilience testbed on top of it: deterministic fault injection
(:mod:`repro.serving.faults`) and closed-loop graceful degradation along
the paper's scheme ladder (:mod:`repro.serving.degradation`).  See
``docs/serving.md``.
"""

from .batcher import Batch, chunk_queries
from .degradation import (
    DegradationController,
    DegradationLevel,
    LevelChange,
    scheme_ladder,
)
from .faults import (
    ArrivalBurst,
    BandwidthDegradation,
    CoreFailure,
    CoreSlowdown,
    FaultPlan,
    Stragglers,
)
from .latency import latency_percentile, sla_compliant_region
from .pipeline import PipelineResult, serve_query_stream
from .server import (
    OUTCOME_NAMES,
    ServerResult,
    ServingPolicy,
    simulate_server,
)
from .sla import SLA_TARGETS, SLATarget, sla_for_model
from .workload import poisson_arrivals

__all__ = [
    "ArrivalBurst",
    "BandwidthDegradation",
    "Batch",
    "CoreFailure",
    "CoreSlowdown",
    "DegradationController",
    "DegradationLevel",
    "FaultPlan",
    "LevelChange",
    "OUTCOME_NAMES",
    "PipelineResult",
    "SLA_TARGETS",
    "SLATarget",
    "ServerResult",
    "ServingPolicy",
    "Stragglers",
    "chunk_queries",
    "serve_query_stream",
    "latency_percentile",
    "poisson_arrivals",
    "scheme_ladder",
    "simulate_server",
    "sla_compliant_region",
    "sla_for_model",
]
