"""At-scale inference serving simulation (Section 6.5).

Recommendation inference is user-facing and governed by SLAs (Table 1).
This subpackage reproduces the paper's tail-latency methodology: a Poisson
load generator (:mod:`repro.serving.workload`), a discrete-event multi-core
inference server (:mod:`repro.serving.server`), and percentile / SLA-region
analysis (:mod:`repro.serving.latency`, :mod:`repro.serving.sla`) — plus a
resilience testbed on top of it: deterministic fault injection
(:mod:`repro.serving.faults`) and closed-loop graceful degradation along
the paper's scheme ladder (:mod:`repro.serving.degradation`).  The fleet
layer composes N such boxes into a sharded, replicated cluster with a
health-aware router, failover, and hedging
(:mod:`repro.serving.cluster`, :mod:`repro.serving.router`).  See
``docs/serving.md`` and ``docs/cluster.md``.
"""

from .batcher import Batch, chunk_queries
from .cluster import (
    CLUSTER_OUTCOME_NAMES,
    ClusterConfig,
    ClusterResult,
    ClusterSim,
    NodeStats,
    ShardMap,
)
from .degradation import (
    DegradationController,
    DegradationLevel,
    LevelChange,
    scheme_ladder,
)
from .faults import (
    ArrivalBurst,
    BandwidthDegradation,
    ClusterFaultPlan,
    CoreFailure,
    CoreSlowdown,
    FaultPlan,
    NodeCrash,
    NodePartition,
    NodeSlow,
    Stragglers,
)
from .latency import latency_percentile, sla_compliant_region
from .pipeline import PipelineResult, serve_query_stream
from .router import HealthPolicy, HealthTracker, HedgePolicy, Router
from .server import (
    OUTCOME_NAMES,
    ServerResult,
    ServerSim,
    ServingPolicy,
    simulate_server,
)
from .sla import SLA_TARGETS, SLATarget, sla_for_model
from .workload import poisson_arrivals

__all__ = [
    "ArrivalBurst",
    "BandwidthDegradation",
    "Batch",
    "CLUSTER_OUTCOME_NAMES",
    "ClusterConfig",
    "ClusterFaultPlan",
    "ClusterResult",
    "ClusterSim",
    "CoreFailure",
    "CoreSlowdown",
    "DegradationController",
    "DegradationLevel",
    "FaultPlan",
    "HealthPolicy",
    "HealthTracker",
    "HedgePolicy",
    "LevelChange",
    "NodeCrash",
    "NodePartition",
    "NodeSlow",
    "NodeStats",
    "OUTCOME_NAMES",
    "PipelineResult",
    "Router",
    "SLA_TARGETS",
    "SLATarget",
    "ServerResult",
    "ServerSim",
    "ServingPolicy",
    "ShardMap",
    "Stragglers",
    "chunk_queries",
    "serve_query_stream",
    "latency_percentile",
    "poisson_arrivals",
    "scheme_ladder",
    "simulate_server",
    "sla_compliant_region",
    "sla_for_model",
]
