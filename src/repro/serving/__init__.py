"""At-scale inference serving simulation (Section 6.5).

Recommendation inference is user-facing and governed by SLAs (Table 1).
This subpackage reproduces the paper's tail-latency methodology: a Poisson
load generator (:mod:`repro.serving.workload`), a discrete-event multi-core
inference server (:mod:`repro.serving.server`), and percentile / SLA-region
analysis (:mod:`repro.serving.latency`, :mod:`repro.serving.sla`).
"""

from .batcher import Batch, chunk_queries
from .latency import latency_percentile, sla_compliant_region
from .pipeline import PipelineResult, serve_query_stream
from .server import ServerResult, simulate_server
from .sla import SLA_TARGETS, SLATarget, sla_for_model
from .workload import poisson_arrivals

__all__ = [
    "Batch",
    "PipelineResult",
    "SLA_TARGETS",
    "SLATarget",
    "ServerResult",
    "chunk_queries",
    "serve_query_stream",
    "latency_percentile",
    "poisson_arrivals",
    "simulate_server",
    "sla_compliant_region",
    "sla_for_model",
]
