"""End-to-end serving pipeline: queries -> batches -> cores -> latency.

Composes the batcher (Section 2.1's chunking step) with the M/G/c server:
per-query latency = batching delay + queueing + inference service.  This
is the full path a production request takes, and it exposes the batching
trade-off the SLA discussion implies: bigger batches amortize compute but
tax every query with collection delay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .batcher import chunk_queries
from .server import ServerResult, simulate_server
from .stats import safe_mean, safe_percentile

__all__ = ["PipelineResult", "serve_query_stream"]


@dataclass
class PipelineResult:
    """Per-query latencies through batcher + server.

    Degenerate aggregations (no queries, no batches) follow the shared
    0.0 convention of :mod:`repro.serving.stats` so multi-node rollups
    can sum pipelines without per-field guards.
    """

    query_latencies_ms: np.ndarray
    batching_delays_ms: np.ndarray
    server: ServerResult
    batch_sizes: np.ndarray

    def percentile(self, q: float) -> float:
        """Per-query latency percentile; 0.0 with no queries."""
        return safe_percentile(self.query_latencies_ms, q)

    @property
    def p95_ms(self) -> float:
        """The SLA-facing tail metric, now including batching delay."""
        return self.percentile(95.0)

    @property
    def mean_batch_size(self) -> float:
        """Achieved average batch occupancy; 0.0 with no batches."""
        return safe_mean(self.batch_sizes)


def serve_query_stream(
    query_arrivals_ms: np.ndarray,
    batch_size: int,
    batch_timeout_ms: float,
    mean_service_ms_full_batch: float,
    num_cores: int,
    rng: np.random.Generator,
    service_cv: float = 0.10,
) -> PipelineResult:
    """Serve a query stream end to end.

    ``mean_service_ms_full_batch`` is the inference time of a *full*
    batch; partial batches scale linearly with occupancy (embedding and
    MLP work are both linear in batch size).
    """
    if mean_service_ms_full_batch <= 0:
        raise ConfigError("service time must be positive")
    batches = chunk_queries(query_arrivals_ms, batch_size, batch_timeout_ms)
    dispatches = np.array([b.dispatch_ms for b in batches])
    sizes = np.array([b.size for b in batches])
    # Per-batch service scales with occupancy.
    scale = sizes / batch_size
    # The server simulation draws around the mean of each batch; emulate by
    # simulating at full-batch service and rescaling per batch afterwards
    # would distort queueing, so instead simulate with per-batch means via
    # a two-step: draw normalized services once, scale, then replay FIFO.
    normalized = simulate_server(
        dispatches, 1.0, num_cores, rng, service_cv=service_cv,
        label="pipeline:normalized",
    ).services_ms
    services = normalized * mean_service_ms_full_batch * scale

    # FIFO replay with the scaled services.
    import heapq

    cores = [0.0] * num_cores
    heapq.heapify(cores)
    starts = np.empty(len(batches))
    for i, dispatch in enumerate(dispatches):
        free_at = heapq.heappop(cores)
        start = max(dispatch, free_at)
        starts[i] = start
        heapq.heappush(cores, start + services[i])
    completions = starts + services

    query_latencies = []
    batching_delays = []
    for i, batch in enumerate(batches):
        for arrival in batch.query_arrivals_ms:
            query_latencies.append(completions[i] - arrival)
            batching_delays.append(batch.dispatch_ms - arrival)
    server = ServerResult(
        latencies_ms=completions - dispatches,
        waits_ms=starts - dispatches,
        services_ms=services,
        num_cores=num_cores,
        # A single dispatch defines no inter-arrival rate (same convention
        # as simulate_server); utilization then reports 0.0.
        offered_interarrival_ms=float(np.mean(np.diff(dispatches)))
        if len(dispatches) > 1
        else 0.0,
    )
    return PipelineResult(
        query_latencies_ms=np.asarray(query_latencies),
        batching_delays_ms=np.asarray(batching_delays),
        server=server,
        batch_sizes=sizes,
    )
