"""Percentiles and SLA-compliant-region analysis (Fig 17).

The paper sweeps the mean arrival time and plots p95 latency per scheme;
the *SLA-compliant region* is the range of arrival times whose p95 meets
the model class's target, and a scheme's merit is (a) lower tail latency
inside the region and (b) tolerating faster arrivals before leaving it.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..config import SimConfig
from ..errors import ConfigError
from .server import ServerResult, simulate_server
from .workload import poisson_arrivals

__all__ = ["latency_percentile", "sweep_arrival_times", "sla_compliant_region"]


def latency_percentile(latencies_ms: Sequence[float], q: float = 95.0) -> float:
    """Percentile of a latency sample (default p95, the paper's metric)."""
    arr = np.asarray(latencies_ms, dtype=float)
    if arr.size == 0:
        raise ConfigError("empty latency sample")
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"percentile must be in [0,100], got {q}")
    return float(np.percentile(arr, q))


def sweep_arrival_times(
    mean_service_ms: float,
    arrival_times_ms: Sequence[float],
    num_cores: int,
    num_requests: int = 2000,
    config: SimConfig = SimConfig(),
    service_cv: float = 0.10,
) -> Dict[float, ServerResult]:
    """Fig 17's x-axis sweep: one serving simulation per arrival time."""
    if mean_service_ms <= 0:
        raise ConfigError("service time must be positive")
    results: Dict[float, ServerResult] = {}
    for arrival_ms in arrival_times_ms:
        rng = config.rng(f"serving:{arrival_ms}:{mean_service_ms}")
        arrivals = poisson_arrivals(arrival_ms, num_requests, rng)
        results[float(arrival_ms)] = simulate_server(
            arrivals, mean_service_ms, num_cores, rng, service_cv=service_cv,
            label=f"sweep:arrival={arrival_ms:g}ms",
        )
    return results


def sla_compliant_region(
    sweep: Dict[float, ServerResult], sla_ms: float, percentile: float = 95.0
) -> "tuple[float, float]":
    """(fastest compliant arrival time, slowest sampled arrival time).

    Returns ``(inf, inf)`` when no sampled point meets the SLA.  The first
    element is the paper's "tolerating faster arrival rates" headline —
    smaller is better.
    """
    if sla_ms <= 0:
        raise ConfigError("SLA must be positive")
    compliant = [
        arrival
        for arrival, result in sweep.items()
        if result.percentile(percentile) <= sla_ms
    ]
    if not compliant:
        return (float("inf"), float("inf"))
    return (min(compliant), max(sweep.keys()))
