"""Closed-loop graceful degradation: the paper's schemes as a ladder.

The paper's optimization schemes (Section 4) are strictly faster than the
baseline, but a production fleet does not run them unconditionally:
software prefetching burns instruction bandwidth and power, MP-HT claims
the sibling hyperthread that co-located jobs would otherwise use, and
shrinking the batch size sacrifices throughput efficiency for latency.
That makes them natural *degradation levers* (the asymmetric-data-flow
line of work motivates exactly this scheme-switching): under duress the
server steps down a ladder —

    level 0  baseline          normal operation
    level 1  sw_pf             enable software prefetching
    level 2  integrated        + model-parallel hyperthreading
    level 3  integrated_small_batch   + reduced batch size

— and steps back up once the tail recovers.  :class:`DegradationController`
implements the closed loop: it watches a sliding window of completed
request latencies, compares the windowed p95 against the SLA target with
hysteresis (escalate above ``escalate_margin * sla``, recover only below
``recover_margin * sla`` and after a cooldown), and emits
:class:`LevelChange` events.  The controller is purely deterministic —
no randomness — so identical latency streams produce identical ladders.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "DegradationController",
    "DegradationLevel",
    "LevelChange",
    "scheme_ladder",
]


@dataclass(frozen=True)
class DegradationLevel:
    """One rung of the ladder: a name and its relative mean service time."""

    name: str
    service_scale: float

    def __post_init__(self) -> None:
        if self.service_scale <= 0:
            raise ConfigError("service scale must be positive")


@dataclass(frozen=True)
class LevelChange:
    """One controller decision, recorded for reporting and tracing."""

    time_ms: float
    from_level: int
    to_level: int
    window_p95_ms: float

    @property
    def escalation(self) -> bool:
        """Whether the change stepped toward more degradation."""
        return self.to_level > self.from_level


def scheme_ladder(
    scheme_service_ms: Mapping[str, float],
    batch_scale: float = 0.6,
) -> Tuple[DegradationLevel, ...]:
    """Build the default ladder from measured per-scheme service times.

    ``scheme_service_ms`` maps scheme names to mean batch service times;
    ``baseline`` is required and anchors level 0, ``sw_pf`` and
    ``integrated`` are used when present.  The final rung models batch-size
    reduction as a further ``batch_scale`` multiplier on the fastest
    scheme's service time (smaller batches cut per-request latency at a
    throughput-efficiency cost the goodput metric surfaces).
    """
    if "baseline" not in scheme_service_ms:
        raise ConfigError("scheme ladder needs a 'baseline' service time")
    if not 0.0 < batch_scale <= 1.0:
        raise ConfigError("batch scale must be in (0, 1]")
    base = float(scheme_service_ms["baseline"])
    if base <= 0:
        raise ConfigError("baseline service time must be positive")
    levels = [DegradationLevel("baseline", 1.0)]
    for scheme in ("sw_pf", "integrated"):
        if scheme in scheme_service_ms:
            scale = float(scheme_service_ms[scheme]) / base
            # A scheme slower than the previous rung cannot serve as a
            # degradation lever; skip it rather than build a broken ladder.
            if scale < levels[-1].service_scale:
                levels.append(DegradationLevel(scheme, scale))
    levels.append(
        DegradationLevel(
            f"{levels[-1].name}_small_batch",
            levels[-1].service_scale * batch_scale,
        )
    )
    return tuple(levels)


class DegradationController:
    """Hysteretic p95-vs-SLA feedback controller over a degradation ladder.

    Parameters
    ----------
    ladder:
        Levels ordered from normal (index 0) to most degraded; each rung's
        ``service_scale`` must not exceed the previous rung's (degrading
        must never slow the server down).
    sla_ms:
        The Table 1 target the windowed p95 is compared against.
    window:
        Number of most recent completed-request latencies considered.
    min_samples:
        Observations required (since the last level change) before any
        decision; the window is cleared on a change so each level is
        judged on its own measurements.
    escalate_margin / recover_margin:
        Hysteresis band: escalate when ``p95 > escalate_margin * sla``,
        recover only when ``p95 < recover_margin * sla``.
    cooldown:
        Extra observations required after a change before stepping back
        toward normal (recovery is deliberately slower than escalation).
    """

    def __init__(
        self,
        ladder: Sequence[DegradationLevel],
        sla_ms: float,
        window: int = 64,
        min_samples: int = 16,
        escalate_margin: float = 1.0,
        recover_margin: float = 0.6,
        cooldown: int = 64,
    ) -> None:
        if not ladder:
            raise ConfigError("degradation ladder must have at least one level")
        for prev, cur in zip(ladder, ladder[1:]):
            if cur.service_scale > prev.service_scale + 1e-12:
                raise ConfigError(
                    f"ladder level {cur.name!r} is slower than {prev.name!r}; "
                    "degradation must not increase service time"
                )
        if sla_ms <= 0:
            raise ConfigError("SLA must be positive")
        if window <= 0 or min_samples <= 0 or min_samples > window:
            raise ConfigError("need 0 < min_samples <= window")
        if not 0.0 < recover_margin <= escalate_margin:
            raise ConfigError("need 0 < recover_margin <= escalate_margin")
        if cooldown < 0:
            raise ConfigError("cooldown must be non-negative")
        self.ladder: Tuple[DegradationLevel, ...] = tuple(ladder)
        self.sla_ms = float(sla_ms)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.escalate_margin = float(escalate_margin)
        self.recover_margin = float(recover_margin)
        self.cooldown = int(cooldown)
        self.level = 0
        self.events: List[LevelChange] = []
        self._latencies: Deque[float] = deque(maxlen=self.window)
        self._since_change = 0

    @property
    def level_name(self) -> str:
        """Name of the current rung."""
        return self.ladder[self.level].name

    def scale(self) -> float:
        """Service-time multiplier of the current rung."""
        return self.ladder[self.level].service_scale

    def window_p95(self) -> float:
        """p95 of the sliding latency window (0.0 while empty).

        Computed in pure python, bit-equal to numpy's default linear
        percentile (same virtual index, same two-branch lerp): the window
        holds at most a few dozen floats and this runs once per completed
        request, where ``np.percentile``'s per-call setup dominated the
        whole resilient serving loop.
        """
        lat = self._latencies
        if not lat:
            return 0.0
        xs = sorted(lat)
        n = len(xs)
        virtual = 0.95 * (n - 1)
        prev = int(virtual)
        gamma = virtual - prev
        a = xs[prev]
        b = xs[prev + 1] if prev + 1 < n else a
        # numpy's _lerp switches formula at t >= 0.5 to keep the result
        # monotone; replicate both branches for bitwise equality.
        if gamma >= 0.5:
            return b - (b - a) * (1.0 - gamma)
        return a + (b - a) * gamma

    def observe(self, now_ms: float, latency_ms: float) -> Optional[LevelChange]:
        """Feed one completed-request latency; maybe change level."""
        self._latencies.append(float(latency_ms))
        self._since_change += 1
        if len(self._latencies) < self.min_samples:
            return None
        p95 = self.window_p95()
        if (
            p95 > self.sla_ms * self.escalate_margin
            and self.level < len(self.ladder) - 1
        ):
            return self._change(now_ms, self.level + 1, p95)
        if (
            p95 < self.sla_ms * self.recover_margin
            and self.level > 0
            and self._since_change >= self.cooldown
        ):
            return self._change(now_ms, self.level - 1, p95)
        return None

    def _change(self, now_ms: float, to_level: int, p95: float) -> LevelChange:
        event = LevelChange(
            time_ms=float(now_ms),
            from_level=self.level,
            to_level=to_level,
            window_p95_ms=p95,
        )
        self.events.append(event)
        self.level = to_level
        # Judge the new level on its own measurements.
        self._latencies.clear()
        self._since_change = 0
        return event
