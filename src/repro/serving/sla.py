"""Service-level-agreement targets (the paper's Table 1).

============  ====================  ==========  ==========
model class   execution bottleneck  model size  SLA target
============  ====================  ==========  ==========
RMC1          embedding ≈ 60%       small       100 ms
RMC2          embedding ≈ 90%       large       400 ms
RMC3          MLP ≈ 80%             medium      100 ms
============  ====================  ==========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError
from ..model.configs import ModelConfig

__all__ = ["SLATarget", "SLA_TARGETS", "sla_for_model"]


@dataclass(frozen=True)
class SLATarget:
    """One model class's characteristics from Table 1."""

    model_class: str
    bottleneck: str
    bottleneck_share: float
    model_size: str
    sla_ms: float

    def meets(self, p95_latency_ms: float) -> bool:
        """Whether a measured p95 latency satisfies this SLA."""
        if p95_latency_ms < 0:
            raise ConfigError("latency must be non-negative")
        return p95_latency_ms <= self.sla_ms


#: Table 1 verbatim.
SLA_TARGETS: Dict[str, SLATarget] = {
    "RMC1": SLATarget("RMC1", "embedding", 0.60, "small", 100.0),
    "RMC2": SLATarget("RMC2", "embedding", 0.90, "large", 400.0),
    "RMC3": SLATarget("RMC3", "mlp", 0.80, "medium", 100.0),
}


def sla_for_model(model: ModelConfig) -> SLATarget:
    """The SLA target governing a model, by its Table 2 category."""
    try:
        return SLA_TARGETS[model.category]
    except KeyError:
        raise ConfigError(
            f"model {model.name!r} has unknown category {model.category!r}"
        ) from None
