"""Deterministic fault injection for the serving simulator.

A real DLRM fleet does not run on the happy path: cores get throttled or
taken offline, DRAM bandwidth is stolen by co-located jobs (the tiered
-memory placement studies show exactly this straggler pattern), load
spikes arrive, and a small fraction of batches land on pathological cache
state and run far past the mean.  :class:`FaultPlan` describes such a
scenario as a composition of declarative fault models that the serving
loop (:func:`repro.serving.server.simulate_server`) consults:

* :class:`CoreSlowdown` — one core's service times are multiplied by a
  factor inside a time window (thermal throttling, a noisy neighbour);
* :class:`CoreFailure` — one core serves nothing inside a window and
  *repairs* at its end (a crash-and-restart cycle);
* :class:`BandwidthDegradation` — every core's service time is multiplied
  inside a window (DRAM bandwidth contention hits the embedding stage
  fleet-wide);
* :class:`ArrivalBurst` — extra requests injected at a point in time (a
  load spike on top of the Poisson baseline);
* :class:`Stragglers` — a seeded fraction of requests draw a heavy-tail
  service multiplier (cold caches, page faults, slow-memory placement).

At fleet scale the failure domain is the *node*, not the core.  The
cluster layer (:mod:`repro.serving.cluster`) consults a
:class:`ClusterFaultPlan` composed of node-scoped models:

* :class:`NodeCrash` — a whole node is down in a window and repairs at
  its end; in-flight shard calls on it are lost (a hard kill, unlike
  :class:`CoreFailure`'s drain semantics);
* :class:`NodePartition` — the node keeps running but is unreachable:
  requests sent to it get no response until the partition heals;
* :class:`NodeSlow` — a persistently slow node: every service time on it
  is multiplied inside the window (bad host, thermal cap, noisy
  neighbour at node granularity).

Everything is deterministic: the plan owns a seed, and every random
quantity (straggler multipliers, retry jitter) derives from that seed and
the request index — never from event ordering — so the same plan and
workload produce identical per-request outcomes across runs and across
``--jobs`` process parallelism.  A ``FaultPlan()`` with no faults is
inert, and ``fault_plan=None`` keeps the serving loop on its original
byte-identical fast path; the same holds for ``ClusterFaultPlan()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = [
    "ArrivalBurst",
    "BandwidthDegradation",
    "ClusterFaultPlan",
    "CoreFailure",
    "CoreSlowdown",
    "FaultPlan",
    "NodeCrash",
    "NodePartition",
    "NodeSlow",
    "NodeTenant",
    "Stragglers",
]

#: Sub-stream tags for the plan's derived random streams.
_STREAM_STRAGGLER = 1
_STREAM_RETRY = 2


@dataclass(frozen=True)
class CoreSlowdown:
    """One core's service times are multiplied by ``factor`` in a window."""

    core: int
    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ConfigError("core index must be non-negative")
        _check_window(self.start_ms, self.end_ms)
        if self.factor < 1.0:
            raise ConfigError("slowdown factor must be >= 1")


@dataclass(frozen=True)
class CoreFailure:
    """One core is offline in ``[start_ms, end_ms)`` and repairs at the end.

    A failed core starts no new work; a request already running on it when
    the window opens completes normally (the modeled failure is a drain +
    restart, not a hard kill — in-flight state is not lost).
    """

    core: int
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ConfigError("core index must be non-negative")
        _check_window(self.start_ms, self.end_ms)


@dataclass(frozen=True)
class BandwidthDegradation:
    """Every core's service time is multiplied by ``factor`` in a window."""

    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.factor < 1.0:
            raise ConfigError("bandwidth degradation factor must be >= 1")


@dataclass(frozen=True)
class ArrivalBurst:
    """``num_requests`` extra arrivals starting at ``start_ms``.

    The burst is evenly spaced at ``interarrival_ms`` (a spike, not a
    random stream) so its offered load is exact and reproducible.
    """

    start_ms: float
    num_requests: int
    interarrival_ms: float

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise ConfigError("burst start must be non-negative")
        if self.num_requests <= 0:
            raise ConfigError("burst request count must be positive")
        if self.interarrival_ms <= 0:
            raise ConfigError("burst inter-arrival time must be positive")

    def arrivals(self) -> np.ndarray:
        """The burst's arrival timestamps."""
        return self.start_ms + self.interarrival_ms * np.arange(
            self.num_requests, dtype=float
        )


@dataclass(frozen=True)
class Stragglers:
    """A seeded fraction of requests draw a heavy-tail service multiplier.

    Each straggler's multiplier is ``multiplier`` when ``tail_alpha`` is 0,
    or ``multiplier * (1 + Pareto(tail_alpha))`` for a genuinely heavy
    tail (smaller alpha = heavier).
    """

    fraction: float
    multiplier: float
    tail_alpha: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigError("straggler fraction must be in [0, 1]")
        if self.multiplier < 1.0:
            raise ConfigError("straggler multiplier must be >= 1")
        if self.tail_alpha < 0.0:
            raise ConfigError("tail alpha must be non-negative")


class FaultPlan:
    """A seeded, composable fault scenario for one serving simulation."""

    def __init__(self, faults: Sequence[object] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self.slowdowns: List[CoreSlowdown] = []
        self.failures: List[CoreFailure] = []
        self.bandwidth: List[BandwidthDegradation] = []
        self.bursts: List[ArrivalBurst] = []
        self.stragglers: List[Stragglers] = []
        for fault in faults:
            if isinstance(fault, CoreSlowdown):
                self.slowdowns.append(fault)
            elif isinstance(fault, CoreFailure):
                self.failures.append(fault)
            elif isinstance(fault, BandwidthDegradation):
                self.bandwidth.append(fault)
            elif isinstance(fault, ArrivalBurst):
                self.bursts.append(fault)
            elif isinstance(fault, Stragglers):
                self.stragglers.append(fault)
            else:
                raise ConfigError(
                    f"unknown fault model {type(fault).__name__!r}"
                )
        self._failure_windows: Dict[int, List[Tuple[float, float]]] = {}
        for failure in self.failures:
            self._failure_windows.setdefault(failure.core, []).append(
                (failure.start_ms, failure.end_ms)
            )
        for windows in self._failure_windows.values():
            windows.sort()

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (
            self.slowdowns
            or self.failures
            or self.bandwidth
            or self.bursts
            or self.stragglers
        )

    # -- service-time perturbation ------------------------------------------

    def service_multiplier(self, core: int, t_ms: float) -> float:
        """Product of every slowdown active on ``core`` at time ``t_ms``."""
        factor = 1.0
        for slow in self.slowdowns:
            if slow.core == core and slow.start_ms <= t_ms < slow.end_ms:
                factor *= slow.factor
        for band in self.bandwidth:
            if band.start_ms <= t_ms < band.end_ms:
                factor *= band.factor
        return factor

    def straggler_multipliers(self, num_requests: int) -> np.ndarray:
        """Per-request heavy-tail multipliers (all 1.0 without stragglers).

        Drawn in one vectorized pass from a stream derived from the plan
        seed, so the multiplier of request *i* depends only on (seed, i) —
        identical across runs regardless of event ordering.
        """
        out = np.ones(num_requests)
        if not self.stragglers or num_requests == 0:
            return out
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _STREAM_STRAGGLER])
        )
        for model in self.stragglers:
            hit = rng.random(num_requests) < model.fraction
            mult = np.full(num_requests, model.multiplier)
            if model.tail_alpha > 0:
                mult *= 1.0 + rng.pareto(model.tail_alpha, size=num_requests)
            out = np.where(hit, out * mult, out)
        return out

    def retry_jitter_stream(self) -> np.random.Generator:
        """The seeded generator the serving loop draws retry jitter from."""
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, _STREAM_RETRY])
        )

    # -- core availability ---------------------------------------------------

    def core_down(self, core: int, t_ms: float) -> bool:
        """Whether ``core`` is inside a failure window at ``t_ms``."""
        for start, end in self._failure_windows.get(core, ()):
            if start <= t_ms < end:
                return True
        return False

    def next_available(self, core: int, t_ms: float) -> float:
        """Earliest time ``>= t_ms`` at which ``core`` may start work."""
        t = t_ms
        for start, end in self._failure_windows.get(core, ()):
            if start <= t < end:
                t = end
        return t

    # -- arrival perturbation ------------------------------------------------

    def inject_arrivals(
        self, arrivals_ms: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge burst arrivals into a sorted stream.

        Returns ``(merged_arrivals, injected_mask)`` where the mask marks
        burst-injected requests.  A stable mergesort keeps baseline
        requests ahead of injected ones at equal timestamps.
        """
        if not self.bursts:
            return arrivals_ms, np.zeros(arrivals_ms.size, dtype=bool)
        extra = np.concatenate([burst.arrivals() for burst in self.bursts])
        merged = np.concatenate([arrivals_ms, extra])
        mask = np.concatenate(
            [np.zeros(arrivals_ms.size, dtype=bool), np.ones(extra.size, dtype=bool)]
        )
        order = np.argsort(merged, kind="stable")
        return merged[order], mask[order]

    # -- reporting -----------------------------------------------------------

    def windows(self) -> List[Tuple[str, float, float, Dict[str, object]]]:
        """Every windowed fault as ``(name, start_ms, end_ms, attrs)``.

        Point-in-time models (bursts) report their active span; stragglers
        have no window and are omitted.  Used for trace-span emission.
        """
        out: List[Tuple[str, float, float, Dict[str, object]]] = []
        for slow in self.slowdowns:
            out.append(
                (
                    f"core_slowdown:{slow.core}",
                    slow.start_ms,
                    slow.end_ms,
                    {"core": slow.core, "factor": slow.factor},
                )
            )
        for failure in self.failures:
            out.append(
                (
                    f"core_failure:{failure.core}",
                    failure.start_ms,
                    failure.end_ms,
                    {"core": failure.core},
                )
            )
        for band in self.bandwidth:
            out.append(
                (
                    "bandwidth_degradation",
                    band.start_ms,
                    band.end_ms,
                    {"factor": band.factor},
                )
            )
        for burst in self.bursts:
            out.append(
                (
                    "arrival_burst",
                    burst.start_ms,
                    burst.start_ms + burst.num_requests * burst.interarrival_ms,
                    {"requests": burst.num_requests},
                )
            )
        return out


def _check_window(start_ms: float, end_ms: float) -> None:
    if start_ms < 0:
        raise ConfigError("fault window start must be non-negative")
    if end_ms <= start_ms:
        raise ConfigError("fault window must end after it starts")


# -- node-scoped faults (cluster layer) --------------------------------------


@dataclass(frozen=True)
class NodeCrash:
    """A whole node is down in ``[start_ms, end_ms)`` and repairs at the end.

    Unlike :class:`CoreFailure` this is a hard kill: shard calls in flight
    on the node when the window opens are lost (the router sees them fail
    at the crash instant), and the node restarts cold — empty queue, idle
    cores, degradation controller reset to its base level.
    """

    node: int
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("node index must be non-negative")
        _check_window(self.start_ms, self.end_ms)


@dataclass(frozen=True)
class NodePartition:
    """A node is unreachable in ``[start_ms, end_ms)`` but keeps running.

    Calls *sent* into the partition get no response (they time out at the
    router); calls whose response would land inside the window are lost
    too.  Work already queued on the node keeps executing — the node is
    healthy, the network is not — so it rejoins warm when the partition
    heals.
    """

    node: int
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("node index must be non-negative")
        _check_window(self.start_ms, self.end_ms)


@dataclass(frozen=True)
class NodeSlow:
    """Every service time on a node is multiplied by ``factor`` in a window.

    The node-granularity analogue of :class:`CoreSlowdown`: a bad host
    that answers, slowly — the case hedging exists for.
    """

    node: int
    start_ms: float
    end_ms: float
    factor: float

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("node index must be non-negative")
        _check_window(self.start_ms, self.end_ms)
        if self.factor < 1.0:
            raise ConfigError("node slowdown factor must be >= 1")


@dataclass(frozen=True)
class NodeTenant:
    """A foreign tenant co-located on one node in ``[start_ms, end_ms)``.

    Cluster-level scoping for the tenancy layer (:mod:`repro.tenants`):
    the node keeps answering, but every service drawn inside the window is
    inflated by ``factor`` — the aggregate slowdown the tenant's LLC and
    DRAM pressure imposes, as computed by the contention model.  Unlike
    :class:`NodeSlow` (an anonymous bad host) the window is named after
    the tenant, so request logs attribute the lateness to ``contention``
    rather than ``fault``.
    """

    node: int
    start_ms: float
    end_ms: float
    factor: float
    tenant: str
    kind: str = "tenant"

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ConfigError("node index must be non-negative")
        _check_window(self.start_ms, self.end_ms)
        if self.factor < 1.0:
            raise ConfigError("tenant slowdown factor must be >= 1")
        if not self.tenant:
            raise ConfigError("tenant name must be non-empty")


class ClusterFaultPlan:
    """A seeded, composable node-scoped fault scenario for one cluster run.

    Follows the same discipline as :class:`FaultPlan`: the plan owns a
    seed, every derived random stream comes from
    ``SeedSequence([seed, stream])``, and an empty plan is inert (the
    cluster's no-fault path is byte-identical with ``ClusterFaultPlan()``
    and with ``None``).
    """

    def __init__(self, faults: Sequence[object] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self.crashes: List[NodeCrash] = []
        self.partitions: List[NodePartition] = []
        self.slowdowns: List[NodeSlow] = []
        for fault in faults:
            if isinstance(fault, NodeCrash):
                self.crashes.append(fault)
            elif isinstance(fault, NodePartition):
                self.partitions.append(fault)
            elif isinstance(fault, (NodeSlow, NodeTenant)):
                # NodeTenant rides the slowdown machinery: slow_factor()
                # duck-types on .node/.start_ms/.end_ms/.factor.
                self.slowdowns.append(fault)
            else:
                raise ConfigError(
                    f"unknown node fault model {type(fault).__name__!r}"
                )
        self._crash_windows: Dict[int, List[Tuple[float, float]]] = {}
        for crash in self.crashes:
            self._crash_windows.setdefault(crash.node, []).append(
                (crash.start_ms, crash.end_ms)
            )
        for windows in self._crash_windows.values():
            windows.sort()
        self._partition_windows: Dict[int, List[Tuple[float, float]]] = {}
        for part in self.partitions:
            self._partition_windows.setdefault(part.node, []).append(
                (part.start_ms, part.end_ms)
            )
        for windows in self._partition_windows.values():
            windows.sort()

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (self.crashes or self.partitions or self.slowdowns)

    # -- node availability ---------------------------------------------------

    def node_down(self, node: int, t_ms: float) -> bool:
        """Whether ``node`` is inside a crash window at ``t_ms``."""
        for start, end in self._crash_windows.get(node, ()):
            if start <= t_ms < end:
                return True
        return False

    def next_up(self, node: int, t_ms: float) -> float:
        """Earliest time ``>= t_ms`` at which ``node`` is up again."""
        t = t_ms
        for start, end in self._crash_windows.get(node, ()):
            if start <= t < end:
                t = end
        return t

    def partitioned(self, node: int, t_ms: float) -> bool:
        """Whether ``node`` is unreachable (partitioned) at ``t_ms``."""
        for start, end in self._partition_windows.get(node, ()):
            if start <= t_ms < end:
                return True
        return False

    def unreachable(self, node: int, t_ms: float) -> bool:
        """Whether a call sent to ``node`` at ``t_ms`` cannot succeed."""
        return self.node_down(node, t_ms) or self.partitioned(node, t_ms)

    def slow_factor(self, node: int, t_ms: float) -> float:
        """Product of every slowdown active on ``node`` at time ``t_ms``."""
        factor = 1.0
        for slow in self.slowdowns:
            if slow.node == node and slow.start_ms <= t_ms < slow.end_ms:
                factor *= slow.factor
        return factor

    def crashes_for(self, node: int) -> List[Tuple[float, float]]:
        """Sorted crash windows of ``node`` (for scheduling crash events)."""
        return list(self._crash_windows.get(node, ()))

    def fault_windows_for(self, node: int) -> List[Tuple[float, float]]:
        """Sorted union of crash + partition windows touching ``node``."""
        wins = list(self._crash_windows.get(node, ())) + list(
            self._partition_windows.get(node, ())
        )
        wins.sort()
        return wins

    # -- reporting -----------------------------------------------------------

    def windows(self) -> List[Tuple[str, float, float, Dict[str, object]]]:
        """Every node fault as ``(name, start_ms, end_ms, attrs)``."""
        out: List[Tuple[str, float, float, Dict[str, object]]] = []
        for crash in self.crashes:
            out.append(
                (
                    f"node_crash:{crash.node}",
                    crash.start_ms,
                    crash.end_ms,
                    {"node": crash.node},
                )
            )
        for part in self.partitions:
            out.append(
                (
                    f"node_partition:{part.node}",
                    part.start_ms,
                    part.end_ms,
                    {"node": part.node},
                )
            )
        for slow in self.slowdowns:
            tenant = getattr(slow, "tenant", None)
            if tenant is not None:
                out.append(
                    (
                        f"tenant_{slow.kind}:{slow.node}",
                        slow.start_ms,
                        slow.end_ms,
                        {
                            "node": slow.node,
                            "factor": slow.factor,
                            "tenant": tenant,
                        },
                    )
                )
            else:
                out.append(
                    (
                        f"node_slow:{slow.node}",
                        slow.start_ms,
                        slow.end_ms,
                        {"node": slow.node, "factor": slow.factor},
                    )
                )
        return out
