"""Query batching (Section 2.1: "the system chunks queries into batches").

Queries arrive individually; the server accumulates them into inference
batches that dispatch either when full or when the oldest queued query has
waited ``timeout_ms`` — the standard latency/throughput trade-off knob in
DLRM serving.  Each batch then becomes one quantum of work for the M/G/c
server simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigError

__all__ = ["Batch", "chunk_queries"]


@dataclass(frozen=True)
class Batch:
    """One dispatched inference batch."""

    dispatch_ms: float
    query_arrivals_ms: np.ndarray

    @property
    def size(self) -> int:
        """Queries in the batch."""
        return int(self.query_arrivals_ms.size)

    @property
    def max_queueing_delay_ms(self) -> float:
        """Wait of the oldest query (bounded by the batcher timeout)."""
        return float(self.dispatch_ms - self.query_arrivals_ms.min())

    @property
    def mean_queueing_delay_ms(self) -> float:
        """Average pre-dispatch wait across the batch's queries."""
        return float(np.mean(self.dispatch_ms - self.query_arrivals_ms))


def chunk_queries(
    arrivals_ms: np.ndarray,
    batch_size: int,
    timeout_ms: float,
) -> List[Batch]:
    """Greedy size-or-timeout batching of a query arrival stream.

    A batch dispatches at the arrival completing it, or at
    ``first_query_arrival + timeout_ms`` if it never fills (whichever is
    earlier); queries arriving after a timeout dispatch start a new batch.
    A trailing partial batch dispatches at its timeout.
    """
    if batch_size <= 0:
        raise ConfigError("batch_size must be positive")
    if timeout_ms <= 0:
        raise ConfigError("timeout must be positive")
    arrivals = np.asarray(arrivals_ms, dtype=float)
    if arrivals.ndim != 1 or arrivals.size == 0:
        raise ConfigError("need a non-empty 1-D arrival array")
    if np.any(np.diff(arrivals) < 0):
        raise ConfigError("arrivals must be non-decreasing")

    batches: List[Batch] = []
    current: List[float] = []
    deadline = float("inf")
    for arrival in arrivals:
        if current and arrival > deadline:
            batches.append(Batch(deadline, np.asarray(current)))
            current = []
        if not current:
            deadline = arrival + timeout_ms
        current.append(float(arrival))
        if len(current) == batch_size:
            batches.append(Batch(float(arrival), np.asarray(current)))
            current = []
            deadline = float("inf")
    if current:
        batches.append(Batch(deadline, np.asarray(current)))
    return batches
