"""Discrete-event multi-core inference server (M/G/c queueing).

Each batch is a quantum of work mapped onto one core (Section 6's
execution model).  Requests queue FIFO; a free core picks the head of the
queue; service time is drawn from a lognormal around the scheme's mean
batch latency (real inference latency has a mild right tail from cache
state and OS noise).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..obs import hooks as obs_hooks
from ..obs.metrics import Histogram

__all__ = ["ServerResult", "simulate_server"]

#: Default coefficient of variation of per-batch service times.
DEFAULT_SERVICE_CV = 0.10


@dataclass
class ServerResult:
    """Per-request latencies of one serving simulation."""

    latencies_ms: np.ndarray
    waits_ms: np.ndarray
    services_ms: np.ndarray
    num_cores: int
    offered_interarrival_ms: float
    extra: dict = field(default_factory=dict)
    latency_hist: Optional[Histogram] = None

    def percentile(self, q: float) -> float:
        """Latency percentile (q in [0, 100]); 0.0 with no requests.

        The empty case follows the same convention as
        :meth:`repro.mem.stats.CacheStats.hit_rate`: degenerate inputs
        yield 0.0 rather than an exception or NaN.
        """
        if self.latencies_ms.size == 0:
            return 0.0
        return float(np.percentile(self.latencies_ms, q))

    @property
    def p50_ms(self) -> float:
        """Median end-to-end request latency."""
        return self.percentile(50.0)

    @property
    def p95_ms(self) -> float:
        """The paper's Fig 17 metric."""
        return self.percentile(95.0)

    @property
    def p99_ms(self) -> float:
        """Tail latency reported by the serving telemetry."""
        return self.percentile(99.0)

    @property
    def mean_ms(self) -> float:
        """Mean end-to-end request latency; 0.0 with no requests."""
        if self.latencies_ms.size == 0:
            return 0.0
        return float(np.mean(self.latencies_ms))

    @property
    def utilization(self) -> float:
        """Offered load fraction: mean service / (cores x inter-arrival)."""
        if self.services_ms.size == 0:
            return 0.0
        return float(
            np.mean(self.services_ms)
            / (self.num_cores * self.offered_interarrival_ms)
        )


def lognormal_services(
    mean_ms: float, count: int, rng: np.random.Generator, cv: float = DEFAULT_SERVICE_CV
) -> np.ndarray:
    """Service times with the given mean and coefficient of variation."""
    if mean_ms <= 0:
        raise ConfigError("mean service time must be positive")
    if cv < 0:
        raise ConfigError("coefficient of variation must be non-negative")
    if cv == 0:
        return np.full(count, mean_ms)
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean_ms) - sigma2 / 2.0
    return rng.lognormal(mu, np.sqrt(sigma2), size=count)


def simulate_server(
    arrivals_ms: np.ndarray,
    mean_service_ms: float,
    num_cores: int,
    rng: np.random.Generator,
    service_cv: float = DEFAULT_SERVICE_CV,
) -> ServerResult:
    """Run the FIFO M/G/c simulation and collect per-request latencies."""
    if num_cores <= 0:
        raise ConfigError("need at least one core")
    if arrivals_ms.ndim != 1 or arrivals_ms.size == 0:
        raise ConfigError("need a non-empty 1-D arrival array")
    if np.any(np.diff(arrivals_ms) < 0):
        raise ConfigError("arrival times must be non-decreasing")
    n = arrivals_ms.size
    services = lognormal_services(mean_service_ms, n, rng, cv=service_cv)
    # Min-heap of core-free times; FIFO dispatch = assign each request to
    # the earliest-free core.
    cores: List[float] = [0.0] * num_cores
    heapq.heapify(cores)
    starts = np.empty(n)
    for i in range(n):
        free_at = heapq.heappop(cores)
        start = max(arrivals_ms[i], free_at)
        starts[i] = start
        heapq.heappush(cores, start + services[i])
    completions = starts + services
    latencies = completions - arrivals_ms
    waits = starts - arrivals_ms
    if arrivals_ms.size > 1:
        offered = float(np.mean(np.diff(arrivals_ms)))
    else:
        offered = float(arrivals_ms[0])
    hist = Histogram()
    hist.observe_many(latencies)
    obs = obs_hooks.active()
    if obs is not None:
        obs.metrics.counter("serving.requests").inc(n)
        obs.metrics.histogram("serving.latency_ms").observe_many(latencies)
        obs.metrics.histogram("serving.wait_ms").observe_many(waits)
        obs.metrics.gauge("serving.cores").set(num_cores)
    return ServerResult(
        latencies_ms=latencies,
        waits_ms=waits,
        services_ms=services,
        num_cores=num_cores,
        offered_interarrival_ms=offered,
        latency_hist=hist,
    )
