"""Discrete-event multi-core inference server (M/G/c queueing).

Each batch is a quantum of work mapped onto one core (Section 6's
execution model).  Requests queue FIFO; a free core picks the head of the
queue; service time is drawn from a lognormal around the scheme's mean
batch latency (real inference latency has a mild right tail from cache
state and OS noise).

Two execution paths share that model:

* the **fast path** — the original vectorized-draw + heap loop, taken when
  no fault plan, policy, or degradation controller is given; its results
  are byte-identical to the pre-resilience simulator;
* the **resilient path** — an event-driven loop (arrivals, core releases,
  timeouts as heap events) that additionally supports per-request
  deadlines from the Table 1 SLAs, queue-timeout + retry with exponential
  backoff and seeded jitter, queue-depth / expired-deadline load shedding,
  fault injection (:mod:`repro.serving.faults`), and closed-loop graceful
  degradation (:mod:`repro.serving.degradation`).

On the resilient path every *logical* request ends in exactly one outcome
— ``completed``, ``shed``, or ``timed_out`` — and the latency arrays cover
completed requests only (``latencies == waits + services`` still holds;
waits of retried requests include their backoff).  ``ServerResult`` grows
outcome counts and a goodput metric: the fraction of offered requests
completed within their deadline.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import ConfigError
from ..mem.hierarchy import get_default_engine
from ..obs import hooks as obs_hooks
from ..obs.metrics import Histogram
from . import fastserve
from .faults import FaultPlan
from .stats import safe_mean, safe_percentile, safe_ratio

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .degradation import DegradationController, LevelChange
    from .sla import SLATarget

__all__ = [
    "OUTCOME_COMPLETED",
    "OUTCOME_NAMES",
    "OUTCOME_SHED",
    "OUTCOME_TIMED_OUT",
    "ServerResult",
    "ServerSim",
    "ServingPolicy",
    "lognormal_services",
    "simulate_server",
]

#: Default coefficient of variation of per-batch service times.
DEFAULT_SERVICE_CV = 0.10

#: Per-request outcome codes (indices into :data:`OUTCOME_NAMES`).
OUTCOME_COMPLETED = 0
OUTCOME_SHED = 1
OUTCOME_TIMED_OUT = 2
OUTCOME_NAMES = ("completed", "shed", "timed_out")

#: Event kinds of the resilient loop, ordered so that at equal timestamps
#: core releases precede arrivals (a core freeing exactly at an arrival
#: serves it, matching the fast path's ``free_at <= arrival`` semantics)
#: and timeouts fire last (a request that could start now is not expired).
_EV_FREE = 0
_EV_ARRIVE = 1
_EV_TIMEOUT = 2


@dataclass(frozen=True)
class ServingPolicy:
    """Admission-control and retry policy of one serving simulation.

    Parameters
    ----------
    deadline_ms:
        End-to-end latency budget per request (typically the model class's
        Table 1 SLA, see :meth:`for_sla`).  Used for goodput accounting
        and — when ``shed_expired`` — to drop requests whose deadline has
        already passed on (re-)arrival.
    timeout_ms:
        Maximum time a request waits in queue before abandoning.  A timed
        -out request retries (below) or ends ``timed_out``.
    max_retries:
        Retry budget per request after a queue timeout.  Each retry
        re-enqueues the request after an exponential backoff.
    retry_backoff_ms / retry_jitter:
        Backoff of retry *k* is ``retry_backoff_ms * 2**(k-1)`` scaled by
        ``1 + retry_jitter * u`` with ``u ~ U[0,1)`` drawn from the fault
        plan's seeded jitter stream (deterministic per run).
    max_queue_depth:
        Load-shedding bound: a request arriving to a queue at this depth
        is shed immediately.
    shed_expired:
        Shed (re-)arrivals whose deadline has already passed instead of
        queueing doomed work.
    """

    deadline_ms: Optional[float] = None
    timeout_ms: Optional[float] = None
    max_retries: int = 0
    retry_backoff_ms: float = 1.0
    retry_jitter: float = 0.5
    max_queue_depth: Optional[int] = None
    shed_expired: bool = True

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigError("deadline must be positive")
        if self.timeout_ms is not None and self.timeout_ms <= 0:
            raise ConfigError("timeout must be positive")
        if self.max_retries < 0:
            raise ConfigError("retry budget must be non-negative")
        if self.retry_backoff_ms <= 0:
            raise ConfigError("retry backoff must be positive")
        if self.retry_jitter < 0:
            raise ConfigError("retry jitter must be non-negative")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ConfigError("queue depth bound must be positive")
        if self.max_retries > 0 and self.timeout_ms is None:
            raise ConfigError("retries require a queue timeout")

    @classmethod
    def for_sla(cls, sla: "SLATarget", **overrides: object) -> "ServingPolicy":
        """Policy whose deadline and queue timeout are the SLA target."""
        kwargs: Dict[str, object] = {
            "deadline_ms": sla.sla_ms,
            "timeout_ms": sla.sla_ms,
        }
        kwargs.update(overrides)
        return cls(**kwargs)  # type: ignore[arg-type]

    @property
    def is_null(self) -> bool:
        """Whether this policy changes nothing about the fast path."""
        return (
            self.deadline_ms is None
            and self.timeout_ms is None
            and self.max_queue_depth is None
        )


@dataclass
class ServerResult:
    """Per-request latencies and outcomes of one serving simulation.

    The latency/wait/service arrays cover **completed** requests in
    arrival order (on the fast path every request completes, so they cover
    everything).  ``outcomes`` — when the resilient path ran — has one
    code per *logical* request (including burst-injected ones) in arrival
    order; ``retry_counts`` counts queue-timeout retries per request.
    """

    latencies_ms: np.ndarray
    waits_ms: np.ndarray
    services_ms: np.ndarray
    num_cores: int
    offered_interarrival_ms: float
    extra: dict = field(default_factory=dict)
    latency_hist: Optional[Histogram] = None
    core_ids: Optional[np.ndarray] = None
    outcomes: Optional[np.ndarray] = None
    retry_counts: Optional[np.ndarray] = None
    injected: Optional[np.ndarray] = None
    deadline_ms: Optional[float] = None
    degradation_events: List["LevelChange"] = field(default_factory=list)
    final_degradation_level: int = 0

    def percentile(self, q: float) -> float:
        """Latency percentile (q in [0, 100]); 0.0 with no requests.

        The empty case follows the same convention as
        :meth:`repro.mem.stats.CacheStats.hit_rate`: degenerate inputs
        yield 0.0 rather than an exception or NaN (see
        :mod:`repro.serving.stats`).
        """
        return safe_percentile(self.latencies_ms, q)

    @property
    def p50_ms(self) -> float:
        """Median end-to-end request latency."""
        return self.percentile(50.0)

    @property
    def p95_ms(self) -> float:
        """The paper's Fig 17 metric."""
        return self.percentile(95.0)

    @property
    def p99_ms(self) -> float:
        """Tail latency reported by the serving telemetry."""
        return self.percentile(99.0)

    @property
    def mean_ms(self) -> float:
        """Mean end-to-end request latency; 0.0 with no requests."""
        return safe_mean(self.latencies_ms)

    @property
    def utilization(self) -> float:
        """Offered load fraction: mean service / (cores x inter-arrival).

        0.0 when the inter-arrival time is unknown (fewer than two
        arrivals) — a single request defines no offered rate — or when no
        request was ever served (an all-shed node observes no service).
        """
        return safe_ratio(
            safe_mean(self.services_ms),
            self.num_cores * self.offered_interarrival_ms,
        )

    # -- outcome accounting --------------------------------------------------

    def outcome_count(self, name: str) -> int:
        """Number of logical requests with the given outcome name."""
        try:
            code = OUTCOME_NAMES.index(name)
        except ValueError:
            raise ConfigError(
                f"unknown outcome {name!r}; known: {OUTCOME_NAMES}"
            ) from None
        if self.outcomes is None:
            # Fast path: every request completed.
            return self.latencies_ms.size if code == OUTCOME_COMPLETED else 0
        return int(np.count_nonzero(self.outcomes == code))

    @property
    def outcome_counts(self) -> Dict[str, int]:
        """Outcome name -> request count (all logical requests)."""
        return {name: self.outcome_count(name) for name in OUTCOME_NAMES}

    @property
    def offered_requests(self) -> int:
        """Total logical requests (completed or not, injected included)."""
        if self.outcomes is None:
            return int(self.latencies_ms.size)
        return int(self.outcomes.size)

    @property
    def retries_total(self) -> int:
        """Total queue-timeout retries across all requests."""
        if self.retry_counts is None:
            return 0
        return int(self.retry_counts.sum())

    @property
    def goodput(self) -> float:
        """Fraction of offered requests completed within their deadline.

        Without a configured deadline every completion counts; 0.0 with no
        offered requests.
        """
        if self.deadline_ms is None:
            good = self.outcome_count("completed")
        else:
            good = int(np.count_nonzero(self.latencies_ms <= self.deadline_ms))
        return safe_ratio(good, self.offered_requests)


def lognormal_services(
    mean_ms: float, count: int, rng: np.random.Generator, cv: float = DEFAULT_SERVICE_CV
) -> np.ndarray:
    """Service times with the given mean and coefficient of variation."""
    if mean_ms <= 0:
        raise ConfigError("mean service time must be positive")
    if cv < 0:
        raise ConfigError("coefficient of variation must be non-negative")
    if cv == 0:
        return np.full(count, mean_ms)
    sigma2 = np.log(1.0 + cv * cv)
    mu = np.log(mean_ms) - sigma2 / 2.0
    return rng.lognormal(mu, np.sqrt(sigma2), size=count)


def _active_request_log():
    """The session's RequestLog, or None (the zero-cost branch)."""
    obs = obs_hooks.active()
    return obs.requests if obs is not None else None


@dataclass
class ServerSim:
    """One box's event loop, packaged as a reusable, seed-stable object.

    A ``ServerSim`` captures everything that defines a single server
    *except* its workload: service-time distribution, core count, fault
    plan, admission policy, and degradation controller.  Calling
    :meth:`run` with an arrival array and a generator executes the FIFO
    M/G/c simulation exactly as :func:`simulate_server` always has — the
    function is now a thin wrapper over this class, byte-identical to the
    pre-refactor behaviour on every path and both engines.

    The point of the extraction is composition: a cluster
    (:mod:`repro.serving.cluster`) is N independent ``ServerSim`` worlds,
    each with its own seeded service stream, its own faults, and its own
    controller, glued together by a router rather than by shared state.

    ``engine`` may be ``None`` (resolve the process default at each
    :meth:`run`), ``"reference"``, or ``"fast"``.
    """

    mean_service_ms: float
    num_cores: int
    service_cv: float = DEFAULT_SERVICE_CV
    fault_plan: Optional[FaultPlan] = None
    policy: Optional[ServingPolicy] = None
    controller: Optional["DegradationController"] = None
    label: Optional[str] = None
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("need at least one core")
        if self.engine is not None and self.engine not in ("fast", "reference"):
            raise ConfigError(
                f"unknown serving engine {self.engine!r}; "
                "expected 'fast' or 'reference'"
            )

    @property
    def is_plain(self) -> bool:
        """Whether :meth:`run` takes the vectorized happy path."""
        return (
            (self.fault_plan is None or self.fault_plan.is_empty)
            and (self.policy is None or self.policy.is_null)
            and self.controller is None
        )

    def run(
        self, arrivals_ms: np.ndarray, rng: np.random.Generator
    ) -> ServerResult:
        """Simulate this server against one arrival process."""
        if arrivals_ms.ndim != 1 or arrivals_ms.size == 0:
            raise ConfigError("need a non-empty 1-D arrival array")
        if np.any(np.diff(arrivals_ms) < 0):
            raise ConfigError("arrival times must be non-decreasing")
        engine = self.engine if self.engine is not None else get_default_engine()
        if engine not in ("fast", "reference"):
            raise ConfigError(
                f"unknown serving engine {engine!r}; "
                "expected 'fast' or 'reference'"
            )
        if self.is_plain:
            return _simulate_fast(
                arrivals_ms, self.mean_service_ms, self.num_cores, rng,
                self.service_cv, self.label, engine,
            )
        return _simulate_resilient(
            arrivals_ms,
            self.mean_service_ms,
            self.num_cores,
            rng,
            self.service_cv,
            self.fault_plan if self.fault_plan is not None else FaultPlan(),
            self.policy if self.policy is not None else ServingPolicy(),
            self.controller,
            self.label,
            engine,
        )


def simulate_server(
    arrivals_ms: np.ndarray,
    mean_service_ms: float,
    num_cores: int,
    rng: np.random.Generator,
    service_cv: float = DEFAULT_SERVICE_CV,
    fault_plan: Optional[FaultPlan] = None,
    policy: Optional[ServingPolicy] = None,
    controller: Optional["DegradationController"] = None,
    label: Optional[str] = None,
    engine: Optional[str] = None,
) -> ServerResult:
    """Run the FIFO M/G/c simulation and collect per-request latencies.

    With ``fault_plan``, ``policy``, and ``controller`` all ``None`` (or a
    null policy and an empty plan) this takes the plain happy path and
    returns byte-identical arrays to the pre-resilience simulator; any
    configured resilience feature switches to the event-driven loop.

    ``engine`` selects the execution engine: ``"reference"`` runs the
    per-request event loops, ``"fast"`` the batched engine from
    :mod:`repro.serving.fastserve` (byte-identical results on both
    paths), and ``None`` uses the process default shared with the memory
    hierarchy (:func:`repro.mem.hierarchy.get_default_engine`).

    ``label`` names this simulation in request-scoped telemetry (the
    :class:`repro.obs.requests.RequestLog` run label and its trace track);
    it has no effect on simulation results.

    This is a thin wrapper over :class:`ServerSim`; use the class directly
    when the same server configuration runs many workloads (the cluster
    layer does).
    """
    return ServerSim(
        mean_service_ms=mean_service_ms,
        num_cores=num_cores,
        service_cv=service_cv,
        fault_plan=fault_plan,
        policy=policy,
        controller=controller,
        label=label,
        engine=engine,
    ).run(arrivals_ms, rng)


def _simulate_fast(
    arrivals_ms: np.ndarray,
    mean_service_ms: float,
    num_cores: int,
    rng: np.random.Generator,
    service_cv: float,
    label: Optional[str] = None,
    engine: str = "reference",
) -> ServerResult:
    """The happy-path M/G/c simulation (byte-identical on both engines)."""
    n = arrivals_ms.size
    services = lognormal_services(mean_service_ms, n, rng, cv=service_cv)
    if engine == "fast":
        starts, core_ids = fastserve.dispatch_plain(
            arrivals_ms, services, num_cores
        )
    else:
        # Min-heap of (core-free time, core id); FIFO dispatch = assign
        # each request to the earliest-free core.  The core id only breaks
        # ties between equally free cores, so start times (and thus every
        # latency) match the id-less original exactly.
        cores = [(0.0, c) for c in range(num_cores)]
        heapq.heapify(cores)
        starts = np.empty(n)
        core_ids = np.empty(n, dtype=np.int64)
        for i in range(n):
            free_at, core = heapq.heappop(cores)
            start = max(arrivals_ms[i], free_at)
            starts[i] = start
            core_ids[i] = core
            heapq.heappush(cores, (start + services[i], core))
    completions = starts + services
    latencies = completions - arrivals_ms
    waits = starts - arrivals_ms
    result = ServerResult(
        latencies_ms=latencies,
        waits_ms=waits,
        services_ms=services,
        num_cores=num_cores,
        offered_interarrival_ms=_offered_interarrival(arrivals_ms),
        core_ids=core_ids,
    )
    log = _active_request_log()
    run = None
    if log is not None:
        run = log.start_run(label=label, num_cores=num_cores, num_requests=n)
        obs = obs_hooks.active()
        run.finish_fast(
            arrivals_ms, starts, services, core_ids,
            tracer=obs.tracer if obs is not None else None,
        )
    _finalize(result, run=run)
    return result


def _simulate_resilient(
    arrivals_ms: np.ndarray,
    mean_service_ms: float,
    num_cores: int,
    rng: np.random.Generator,
    service_cv: float,
    plan: FaultPlan,
    policy: ServingPolicy,
    controller: Optional["DegradationController"],
    label: Optional[str] = None,
    engine: str = "reference",
) -> ServerResult:
    """Event-driven loop with faults, deadlines, retries, and shedding."""
    arrivals, injected = plan.inject_arrivals(arrivals_ms)
    n = arrivals.size
    base_services = lognormal_services(mean_service_ms, n, rng, cv=service_cv)
    strag = plan.straggler_multipliers(n)
    base_services = base_services * strag
    jitter_rng = plan.retry_jitter_stream()

    log = _active_request_log()
    run = (
        log.start_run(
            label=label,
            num_cores=num_cores,
            num_requests=n,
            deadline_ms=policy.deadline_ms,
        )
        if log is not None
        else None
    )

    if engine == "fast":
        outcome, retry_count, starts, services, core_of = (
            fastserve.resilient_events(
                arrivals, base_services, strag, num_cores,
                plan, policy, controller, jitter_rng, run,
            )
        )
    else:
        deadline = (
            arrivals + policy.deadline_ms if policy.deadline_ms is not None else None
        )
        outcome = np.full(n, -1, dtype=np.int64)
        retry_count = np.zeros(n, dtype=np.int64)
        in_queue = np.zeros(n, dtype=bool)
        started = np.zeros(n, dtype=bool)
        starts = np.zeros(n)
        services = np.zeros(n)
        core_of = np.full(n, -1, dtype=np.int64)

        events: List[tuple] = []  # (time, kind, seq, payload)
        seq = 0

        def push(t: float, kind: int, payload: int) -> None:
            nonlocal seq
            heapq.heappush(events, (t, kind, seq, payload))
            seq += 1

        running: Dict[int, int] = {}  # core -> request currently on it
        idle: List[tuple] = []  # heap of (idle-since, core)
        queue: deque = deque()
        depth = 0  # live queue entries (lazily cancelled ones excluded)

        for core in range(num_cores):
            push(plan.next_available(core, 0.0), _EV_FREE, core)
        for i in range(n):
            push(float(arrivals[i]), _EV_ARRIVE, i)

        def dispatch(now: float) -> None:
            nonlocal depth
            while queue and idle:
                _, core = idle[0]
                if plan.core_down(core, now):
                    # The core failed while idle; it re-enters service at the
                    # end of its repair window.
                    heapq.heappop(idle)
                    push(plan.next_available(core, now), _EV_FREE, core)
                    continue
                i = queue[0]
                if not in_queue[i]:  # lazily cancelled by a timeout
                    queue.popleft()
                    continue
                heapq.heappop(idle)
                queue.popleft()
                in_queue[i] = False
                depth -= 1
                started[i] = True
                scale = controller.scale() if controller is not None else 1.0
                fault_mult = plan.service_multiplier(core, now)
                svc = base_services[i] * scale * fault_mult
                starts[i] = now
                services[i] = svc
                core_of[i] = core
                running[core] = i
                if run is not None:
                    run.event(
                        i,
                        "dispatch",
                        now,
                        core=core,
                        level=controller.level if controller is not None else None,
                        scheme=(
                            controller.ladder[controller.level].name
                            if controller is not None
                            else None
                        ),
                        fault_mult=float(fault_mult),
                        straggler_mult=float(strag[i]),
                        scale=float(scale),
                    )
                push(now + svc, _EV_FREE, core)

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _EV_FREE:
                core = payload
                finished = running.pop(core, None)
                if finished is not None:
                    outcome[finished] = OUTCOME_COMPLETED
                    if run is not None:
                        run.event(finished, "complete", now, core=core)
                    if controller is not None:
                        # Level changes are recorded in controller.events.
                        controller.observe(now, now - float(arrivals[finished]))
                if plan.core_down(core, now):
                    push(plan.next_available(core, now), _EV_FREE, core)
                else:
                    heapq.heappush(idle, (now, core))
                    dispatch(now)
            elif kind == _EV_ARRIVE:
                i = payload
                if run is not None:
                    if retry_count[i] > 0:
                        run.event(i, "retry_arrive", now, attempt=int(retry_count[i]))
                    else:
                        run.event(i, "arrive", now)
                if (
                    policy.shed_expired
                    and deadline is not None
                    and now >= deadline[i]
                ):
                    outcome[i] = OUTCOME_TIMED_OUT
                    if run is not None:
                        run.event(i, "expired", now)
                elif (
                    policy.max_queue_depth is not None
                    and depth >= policy.max_queue_depth
                ):
                    outcome[i] = OUTCOME_SHED
                    if run is not None:
                        run.event(i, "shed", now, depth=depth)
                else:
                    in_queue[i] = True
                    queue.append(i)
                    depth += 1
                    if policy.timeout_ms is not None:
                        push(now + policy.timeout_ms, _EV_TIMEOUT, i)
                    dispatch(now)
            else:  # _EV_TIMEOUT
                i = payload
                if started[i] or outcome[i] >= 0 or not in_queue[i]:
                    continue  # already dispatched or resolved
                in_queue[i] = False  # lazy removal from the FIFO deque
                depth -= 1
                if retry_count[i] < policy.max_retries:
                    retry_count[i] += 1
                    backoff = policy.retry_backoff_ms * 2.0 ** (retry_count[i] - 1)
                    backoff *= 1.0 + policy.retry_jitter * float(jitter_rng.random())
                    if run is not None:
                        run.event(
                            i,
                            "timeout_retry",
                            now,
                            attempt=int(retry_count[i]),
                            backoff_ms=float(backoff),
                        )
                    push(now + backoff, _EV_ARRIVE, i)
                else:
                    outcome[i] = OUTCOME_TIMED_OUT
                    if run is not None:
                        run.event(i, "timeout", now)

    completed = outcome == OUTCOME_COMPLETED
    completions = starts + services
    result = ServerResult(
        latencies_ms=(completions - arrivals)[completed],
        waits_ms=(starts - arrivals)[completed],
        services_ms=services[completed],
        num_cores=num_cores,
        offered_interarrival_ms=_offered_interarrival(arrivals),
        core_ids=core_of[completed],
        outcomes=outcome,
        retry_counts=retry_count,
        injected=injected,
        deadline_ms=policy.deadline_ms,
        degradation_events=list(controller.events) if controller is not None else [],
        final_degradation_level=controller.level if controller is not None else 0,
    )
    if run is not None:
        obs = obs_hooks.active()
        run.finish(
            arrivals=arrivals,
            injected=injected,
            outcomes=outcome,
            retry_counts=retry_count,
            starts=starts,
            services=services,
            core_of=core_of,
            plan=plan,
            tracer=obs.tracer if obs is not None else None,
        )
    _finalize(result, plan=plan, controller=controller, run=run)
    return result


def _offered_interarrival(arrivals_ms: np.ndarray) -> float:
    """Mean inter-arrival time; 0.0 when a single arrival defines none."""
    if arrivals_ms.size > 1:
        return float(np.mean(np.diff(arrivals_ms)))
    return 0.0


def _finalize(
    result: ServerResult,
    plan: Optional[FaultPlan] = None,
    controller: Optional["DegradationController"] = None,
    run=None,
) -> None:
    """Attach the latency histogram and publish telemetry."""
    hist = Histogram()
    hist.observe_many(result.latencies_ms)
    result.latency_hist = hist
    obs = obs_hooks.active()
    if obs is None:
        return
    obs.metrics.counter("serving.requests").inc(result.offered_requests)
    lat_hist = obs.metrics.histogram("serving.latency_ms")
    if run is not None:
        # Link histogram buckets back to concrete requests: same exemplar
        # id as the request-log line and the per-request trace span.
        ids = run.completed_ids()
        for k, value in enumerate(result.latencies_ms):
            if k < len(ids):
                lat_hist.observe_exemplar(float(value), ids[k])
            else:  # run log truncated by its bound; keep the observation
                lat_hist.observe(float(value))
    else:
        lat_hist.observe_many(result.latencies_ms)
    obs.metrics.histogram("serving.wait_ms").observe_many(result.waits_ms)
    obs.metrics.gauge("serving.cores").set(result.num_cores)
    if result.outcomes is not None:
        obs.metrics.counter("serving.shed").inc(result.outcome_count("shed"))
        obs.metrics.counter("serving.timeouts").inc(
            result.outcome_count("timed_out")
        )
        obs.metrics.counter("serving.retries").inc(result.retries_total)
        obs.metrics.gauge("serving.degradation_level").set(
            result.final_degradation_level
        )
    if plan is not None and not plan.is_empty:
        tid = obs.tracer.new_sim_track("serving.faults (ms)")
        for name, start, end, attrs in plan.windows():
            obs.tracer.add_sim_span(
                name, "serving.fault", start, end - start, tid=tid, args=attrs
            )
    if controller is not None and controller.events:
        tid = obs.tracer.new_sim_track("serving.degradation (ms)")
        for event in controller.events:
            obs.tracer.add_sim_span(
                f"level:{controller.ladder[event.to_level].name}",
                "serving.degradation",
                event.time_ms,
                0.0,
                tid=tid,
                args={
                    "from": event.from_level,
                    "to": event.to_level,
                    "window_p95_ms": event.window_p95_ms,
                },
            )
