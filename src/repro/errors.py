"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class ConfigError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class TraceError(ReproError):
    """A trace is malformed (offsets not monotone, indices out of range...)."""


class SimulationError(ReproError):
    """The simulator reached an impossible state (internal invariant broken)."""


class UnknownModelError(ConfigError):
    """Requested model name is not in the model zoo."""


class UnknownPlatformError(ConfigError):
    """Requested CPU platform name is not in the platform registry."""


class UnknownSchemeError(ConfigError):
    """Requested optimization scheme name is not registered."""
