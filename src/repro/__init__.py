"""repro — reproduction of "Optimizing CPU Performance for Recommendation
Systems At-Scale" (ISCA 2023).

The package is organized as the paper's system stack:

* :mod:`repro.trace` — embedding-lookup trace synthesis (Meta-trace
  statistics: High/Medium/Low hotness, one-item, random),
* :mod:`repro.mem` — trace-driven cache hierarchy + DRAM simulator,
* :mod:`repro.cpu` — CPU platform registry, analytic OoO core, SMT model,
* :mod:`repro.model` — from-scratch numpy DLRM (Table 2 model zoo),
* :mod:`repro.engine` — execution/timing engines (embedding, MLP roofline,
  end-to-end, multi-core),
* :mod:`repro.core` — the paper's contribution: application-initiated
  software prefetching, MP-HT hyperthreading, the Integrated scheme,
* :mod:`repro.analysis` — reuse-distance / hotness / breakdown tooling,
* :mod:`repro.serving` — Poisson load + M/G/c tail-latency simulation,
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import quick_eval
    results = quick_eval(model="rm2_1", dataset="low")
    print(results["sw_pf"].speedup_over(results["baseline"]))
"""

from typing import Dict, Optional, Tuple

from .config import DEFAULT_CONFIG, SimConfig
from .core.schemes import SCHEME_NAMES, SchemeResult, evaluate_all_schemes
from .cpu.platform import get_platform
from .model.configs import get_model
from .trace.production import make_trace
from .trace.stream import AddressMap

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "SCHEME_NAMES",
    "SchemeResult",
    "SimConfig",
    "__version__",
    "quick_eval",
]


def quick_eval(
    model: str = "rm2_1",
    dataset: str = "low",
    platform: str = "csl",
    num_cores: int = 1,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    schemes: Tuple[str, ...] = SCHEME_NAMES,
    config: Optional[SimConfig] = None,
) -> Dict[str, SchemeResult]:
    """Evaluate the paper's design points on one workload, in one call.

    This is the README's one-liner: it builds the scaled model, synthesizes
    a trace at the requested hotness, and runs every scheme on the chosen
    platform.  Defaults are sized to finish in seconds on a laptop.
    """
    config = config or SimConfig()
    spec = get_platform(platform)
    cfg = get_model(model).scaled(scale)
    trace = make_trace(
        dataset,
        num_tables=cfg.num_tables,
        rows_per_table=cfg.rows,
        batch_size=batch_size,
        num_batches=num_batches,
        lookups_per_sample=cfg.lookups_per_sample,
        config=config,
    )
    amap = AddressMap([cfg.rows] * cfg.num_tables, cfg.embedding_dim)
    return evaluate_all_schemes(
        cfg, trace, amap, spec, num_cores=num_cores, schemes=schemes
    )
