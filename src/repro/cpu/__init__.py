"""CPU platform and core models.

* :mod:`repro.cpu.platform` — the registry of evaluated CPUs: the paper's
  primary Cascade Lake 6240R (Table 3) plus the Section 6.4 sweep platforms
  (Skylake, Ice Lake, Sapphire Rapids, Zen3).
* :mod:`repro.cpu.core` — an analytic out-of-order core: instruction window,
  issue width, and MSHR-limited memory-level parallelism.
* :mod:`repro.cpu.smt` — the simultaneous-multithreading contention model
  used by the hyperthreading schedulers.
"""

from .core import CoreModel, CoreSpec
from .platform import (
    CPUSpec,
    PLATFORM_NAMES,
    get_platform,
    list_platforms,
    register_platform,
)
from .smt import SMTContention, SMTModel, ThreadProfile

__all__ = [
    "CPUSpec",
    "CoreModel",
    "CoreSpec",
    "PLATFORM_NAMES",
    "SMTContention",
    "SMTModel",
    "ThreadProfile",
    "get_platform",
    "list_platforms",
    "register_platform",
]
