"""Simultaneous multithreading (hyperthreading) contention model.

Two hardware threads on one physical core share the issue ports, the memory
pipeline, and (competitively) structures like reservation stations and fill
buffers.  The model here predicts each thread's slowdown when colocated,
from two measurable properties of each thread running alone:

* ``utilization`` — issue-slot utilization (IPC / width),
* ``stall_fraction`` — fraction of cycles in full-window / MSHR stalls.

The slowdown of thread *i* colocated with sibling *j* is::

    inflation_i = max(1, util_i + port_overlap * util_j)   # issue contention
                + window_pressure * stall_frac_j           # shared-entry pressure

The first term is the SMT bandwidth argument with a twist: only the
fraction ``port_overlap`` of the sibling's issue demand lands on ports
thread *i* also needs — a GEMM lives on the FMA ports while the embedding
kernel lives on the load ports, which is exactly why the paper's MP-HT
pairing is favourable while DP-HT's symmetric pairings (GEMM+GEMM,
memory+memory) collide head-on.  The second term encodes the paper's
synergy mechanism: a sibling that spends most of its time in full-window
stalls ties down shared pipeline resources; software prefetching shrinks
``stall_frac`` of the embedding thread, which *lowers the inflation of the
MLP sibling* — this is why Integrated beats the product of SW-PF and
MP-HT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ThreadProfile", "SMTContention", "SMTModel"]


@dataclass(frozen=True)
class ThreadProfile:
    """Solo-execution profile of one software thread."""

    name: str
    time_cycles: float
    utilization: float
    stall_fraction: float

    def __post_init__(self) -> None:
        # NaN slips through a plain `< 0` check (nan < 0 is False) and
        # would propagate silently through every inflation product.
        if not math.isfinite(self.time_cycles) or self.time_cycles < 0:
            raise ConfigError(
                f"time must be finite and non-negative, got {self.time_cycles}"
            )
        if not 0.0 <= self.utilization <= 1.0:
            raise ConfigError(f"utilization must be in [0,1], got {self.utilization}")
        if not 0.0 <= self.stall_fraction <= 1.0:
            raise ConfigError(
                f"stall fraction must be in [0,1], got {self.stall_fraction}"
            )


@dataclass(frozen=True)
class SMTContention:
    """Tunable contention coefficients (calibrated in tests/benchmarks)."""

    #: Weight of the sibling's stall fraction (shared-entry pressure).
    window_pressure: float = 0.35
    #: Fraction of the sibling's issue demand contending for the same
    #: execution ports.  1.0 = identical kernels (DP-HT's symmetric
    #: phases); heterogeneous pairs (GEMM vs. gather) overlap less.
    port_overlap: float = 0.5
    #: Extra inflation both threads pay for sharing the L1/L2 when both are
    #: memory-intensive (cache thrash; DP-HT's embedding phases).  Applied
    #: by callers that do not simulate the shared caches directly.
    cache_share_penalty: float = 0.25

    def __post_init__(self) -> None:
        for name in ("window_pressure", "cache_share_penalty"):
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0:
                raise ConfigError(
                    f"{name} must be finite and non-negative, got {value}"
                )
        if not 0.0 <= self.port_overlap <= 1.0:
            raise ConfigError(
                f"port_overlap must be in [0,1], got {self.port_overlap}"
            )


class SMTModel:
    """Predicts colocated run times for a pair of thread profiles."""

    def __init__(self, contention: SMTContention = SMTContention()) -> None:
        self.contention = contention

    def inflation(
        self, thread: ThreadProfile, sibling: ThreadProfile, identical: bool = False
    ) -> float:
        """Slowdown factor of ``thread`` when colocated with ``sibling``.

        ``identical=True`` marks siblings running the *same* kernel
        (DP-HT's symmetric phases), whose issue demand lands on exactly the
        same execution ports — full port overlap instead of the partial
        overlap of heterogeneous pairs.
        """
        overlap = 1.0 if identical else self.contention.port_overlap
        issue_term = max(1.0, thread.utilization + overlap * sibling.utilization)
        pressure_term = self.contention.window_pressure * sibling.stall_fraction
        return issue_term + pressure_term

    def colocated_times(
        self, a: ThreadProfile, b: ThreadProfile
    ) -> "tuple[float, float]":
        """Run times of ``a`` and ``b`` when sharing one physical core."""
        return (
            a.time_cycles * self.inflation(a, b),
            b.time_cycles * self.inflation(b, a),
        )

    def overlapped_time(self, a: ThreadProfile, b: ThreadProfile) -> float:
        """Makespan of running ``a`` and ``b`` in parallel on SMT siblings.

        Contention only applies while *both* threads are live: the threads
        co-run at their inflated rates until the faster one completes, then
        the survivor finishes at solo speed.  (A naive ``max`` of fully
        inflated times would charge a long thread for a sibling that
        retired almost immediately — badly wrong for unbalanced pairs like
        an MLP-heavy model's giant bottom MLP next to a tiny embedding
        stage.)
        """
        infl_a = self.inflation(a, b)
        infl_b = self.inflation(b, a)
        wall_a = a.time_cycles * infl_a
        wall_b = b.time_cycles * infl_b
        if wall_a <= wall_b:
            first_done, survivor_total, survivor_infl = wall_a, b.time_cycles, infl_b
        else:
            first_done, survivor_total, survivor_infl = wall_b, a.time_cycles, infl_a
        progressed = first_done / survivor_infl
        return first_done + (survivor_total - progressed)

    def serialized_time(self, a: ThreadProfile, b: ThreadProfile) -> float:
        """Makespan of running the two threads back to back (no SMT)."""
        return a.time_cycles + b.time_cycles
