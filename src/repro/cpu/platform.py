"""CPU platform registry.

The paper evaluates on Cascade Lake 6240R (Table 3) and, in Section 6.4, on
Skylake, Ice Lake, Sapphire Rapids and AMD Zen3.  A :class:`CPUSpec` carries
everything the simulator needs: frequency, core/SMT counts, the memory
hierarchy geometry, out-of-order resources, and peak SIMD throughput.

Microarchitectural parameters come from vendor documentation; the relative
window sizes match the paper's Section 6.4 note that Ice Lake and Sapphire
Rapids have instruction windows 58% / 129% larger than Cascade Lake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import ConfigError, UnknownPlatformError
from ..mem.dram import DRAMConfig
from ..mem.hierarchy import HierarchyConfig
from ..units import gb_per_s, ghz, kib, mib
from .core import CoreSpec

__all__ = [
    "CPUSpec",
    "get_platform",
    "list_platforms",
    "register_platform",
    "PLATFORM_NAMES",
]


@dataclass(frozen=True)
class CPUSpec:
    """Everything the simulator needs to know about one CPU platform."""

    name: str
    display_name: str
    frequency_hz: float
    cores_per_socket: int
    sockets: int
    smt_per_core: int
    core: CoreSpec
    hierarchy: HierarchyConfig
    peak_dram_bw_bytes_s: float
    #: Cores sharing one last-level cache slice (Zen3 CCX = 8; Intel = all).
    llc_shared_cores: int = 0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.cores_per_socket <= 0 or self.sockets <= 0:
            raise ConfigError("core/socket counts must be positive")
        if self.smt_per_core not in (1, 2):
            raise ConfigError("smt_per_core must be 1 or 2")

    @property
    def total_cores(self) -> int:
        """Physical cores across all sockets."""
        return self.cores_per_socket * self.sockets

    @property
    def peak_dram_bw_bytes_per_cycle(self) -> float:
        """Per-socket DRAM peak expressed in bytes per core cycle."""
        return self.peak_dram_bw_bytes_s / self.frequency_hz

    def llc_group_size(self) -> int:
        """Number of cores sharing one LLC instance."""
        return self.llc_shared_cores or self.cores_per_socket


def _dram(base_ns: float, peak_gb_s: float, frequency_hz: float) -> DRAMConfig:
    cycles = base_ns * 1e-9 * frequency_hz
    return DRAMConfig(
        base_latency_cycles=cycles,
        peak_bandwidth_bytes_per_cycle=gb_per_s(peak_gb_s) / frequency_hz,
        row_hit_latency_cycles=cycles * 0.5,
    )


def _make_registry() -> Dict[str, CPUSpec]:
    registry: Dict[str, CPUSpec] = {}

    # --- Cascade Lake 6240R: the paper's Table 3 machine -------------------
    csl_freq = ghz(2.4)
    registry["csl"] = CPUSpec(
        name="csl",
        display_name="Cascade Lake 6240R",
        frequency_hz=csl_freq,
        cores_per_socket=24,
        sockets=2,
        smt_per_core=2,
        core=CoreSpec(
            rob_entries=224,
            issue_width=4,
            l1_mshrs=12,
            fp32_flops_per_cycle=64.0,  # 2x AVX-512 FMA ports
            frequency_hz=csl_freq,
        ),
        hierarchy=HierarchyConfig(
            l1_size=kib(32), l1_ways=8, l1_latency=5.0,
            l2_size=mib(1), l2_ways=16, l2_latency=14.0,
            l3_size=int(mib(35.75)), l3_ways=11, l3_latency=50.0,
            dram=_dram(95.0, 140.0, csl_freq),
        ),
        peak_dram_bw_bytes_s=gb_per_s(140.0),
    )

    # --- Skylake (Xeon Gold class, 24 cores) --------------------------------
    skl_freq = ghz(3.0)
    registry["skl"] = CPUSpec(
        name="skl",
        display_name="Skylake",
        frequency_hz=skl_freq,
        cores_per_socket=24,
        sockets=1,
        smt_per_core=2,
        core=CoreSpec(
            rob_entries=224,
            issue_width=4,
            l1_mshrs=12,
            fp32_flops_per_cycle=64.0,
            frequency_hz=skl_freq,
        ),
        hierarchy=HierarchyConfig(
            l1_size=kib(32), l1_ways=8, l1_latency=5.0,
            l2_size=mib(1), l2_ways=16, l2_latency=14.0,
            l3_size=int(mib(24.75)), l3_ways=11, l3_latency=44.0,
            dram=_dram(90.0, 128.0, skl_freq),
        ),
        peak_dram_bw_bytes_s=gb_per_s(128.0),
    )

    # --- Ice Lake (window +58% vs CSL, per Section 6.4) ---------------------
    icl_freq = ghz(2.4)
    registry["icl"] = CPUSpec(
        name="icl",
        display_name="Ice Lake",
        frequency_hz=icl_freq,
        cores_per_socket=32,
        sockets=1,
        smt_per_core=2,
        core=CoreSpec(
            rob_entries=352,
            issue_width=5,
            l1_mshrs=16,
            fp32_flops_per_cycle=64.0,
            frequency_hz=icl_freq,
        ),
        hierarchy=HierarchyConfig(
            l1_size=kib(48), l1_ways=12, l1_latency=5.0,
            l2_size=int(mib(1.25)), l2_ways=20, l2_latency=14.0,
            l3_size=mib(48), l3_ways=12, l3_latency=52.0,
            dram=_dram(100.0, 204.0, icl_freq),
        ),
        peak_dram_bw_bytes_s=gb_per_s(204.0),
    )

    # --- Sapphire Rapids (window +129% vs CSL) -------------------------------
    spr_freq = ghz(2.0)
    registry["spr"] = CPUSpec(
        name="spr",
        display_name="Sapphire Rapids",
        frequency_hz=spr_freq,
        cores_per_socket=56,
        sockets=1,
        smt_per_core=2,
        core=CoreSpec(
            rob_entries=512,
            issue_width=6,
            l1_mshrs=16,
            fp32_flops_per_cycle=64.0,
            frequency_hz=spr_freq,
        ),
        hierarchy=HierarchyConfig(
            l1_size=kib(48), l1_ways=12, l1_latency=5.0,
            l2_size=mib(2), l2_ways=16, l2_latency=15.0,
            l3_size=int(mib(105)), l3_ways=15, l3_latency=55.0,
            dram=_dram(105.0, 307.0, spr_freq),
        ),
        peak_dram_bw_bytes_s=gb_per_s(307.0),
    )

    # --- AMD Zen3 (EPYC 7763): 8-core CCX slices of L3 -----------------------
    zen3_freq = ghz(2.45)
    registry["zen3"] = CPUSpec(
        name="zen3",
        display_name="AMD Zen3 EPYC 7763",
        frequency_hz=zen3_freq,
        cores_per_socket=64,
        sockets=2,
        smt_per_core=2,
        core=CoreSpec(
            rob_entries=256,
            issue_width=4,
            l1_mshrs=16,
            fp32_flops_per_cycle=32.0,  # 2x AVX2 FMA ports
            frequency_hz=zen3_freq,
        ),
        hierarchy=HierarchyConfig(
            l1_size=kib(32), l1_ways=8, l1_latency=4.0,
            l2_size=kib(512), l2_ways=8, l2_latency=12.0,
            l3_size=mib(32), l3_ways=16, l3_latency=46.0,  # per-CCX slice
            dram=_dram(105.0, 204.0, zen3_freq),
        ),
        peak_dram_bw_bytes_s=gb_per_s(204.0),
        llc_shared_cores=8,
    )

    return registry


_REGISTRY = _make_registry()

#: Names of the built-in platforms, in the paper's Fig 16 order.
PLATFORM_NAMES: Tuple[str, ...] = ("skl", "csl", "icl", "spr", "zen3")


def get_platform(name: str) -> CPUSpec:
    """Look up a platform by short name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise UnknownPlatformError(
            f"unknown platform {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_platforms() -> Dict[str, CPUSpec]:
    """A copy of the whole registry keyed by short name."""
    return dict(_REGISTRY)


def register_platform(spec: CPUSpec, overwrite: bool = False) -> None:
    """Add a custom platform to the registry (for what-if studies)."""
    if spec.name in _REGISTRY and not overwrite:
        raise ConfigError(f"platform {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
