"""Analytic out-of-order core model.

:class:`CoreModel` converts a stream of issue events (compute micro-ops and
loads with known service latency) into elapsed cycles, honouring the two
resources that bound memory-level parallelism on a real core:

* the **instruction window** (ROB): the core can run ahead of the oldest
  incomplete load by at most ``rob_entries`` instructions, after which it
  takes a *full-window stall* — the phenomenon the paper's synergy argument
  is built on ("prefetching helps in freeing CPU pipeline resources,
  avoiding issues like full window stalls");
* the **MSHR / fill-buffer file**: at most ``l1_mshrs`` misses may be
  outstanding, bounding achievable MLP.

The model is an interval-style approximation (Karkhanis & Smith lineage):
cache hits are pipelined and cost only issue bandwidth, misses are tracked
as in-flight intervals that overlap until a window or MSHR limit forces the
issue cursor to wait.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = ["CoreSpec", "CoreModel"]

_INF = float("inf")


@dataclass(frozen=True)
class CoreSpec:
    """Static out-of-order resources of one physical core."""

    rob_entries: int = 224
    issue_width: int = 4
    l1_mshrs: int = 12
    #: Maximum outstanding *demand* misses.  Demand loads occupy the load
    #: queue and scheduler until completion, so real cores sustain fewer
    #: outstanding demand misses than fill buffers exist; software
    #: prefetches retire immediately and can use the full MSHR file.  This
    #: asymmetry is precisely why the paper's application-initiated
    #: prefetching speeds up a single core despite identical peak MLP.
    demand_concurrency: int = 6
    fp32_flops_per_cycle: float = 64.0
    frequency_hz: float = 2.4e9

    def __post_init__(self) -> None:
        if self.rob_entries <= 0:
            raise ConfigError("rob_entries must be positive")
        if self.issue_width <= 0:
            raise ConfigError("issue_width must be positive")
        if self.l1_mshrs <= 0:
            raise ConfigError("l1_mshrs must be positive")
        if not 0 < self.demand_concurrency <= self.l1_mshrs:
            raise ConfigError(
                "demand_concurrency must be in [1, l1_mshrs] "
                f"(got {self.demand_concurrency} vs {self.l1_mshrs} MSHRs)"
            )
        if self.fp32_flops_per_cycle <= 0:
            raise ConfigError("fp32_flops_per_cycle must be positive")

    def window_mlp(self, instructions_per_miss: float) -> float:
        """Window-bounded MLP for a given miss spacing (instructions)."""
        if instructions_per_miss <= 0:
            raise ConfigError("instructions_per_miss must be positive")
        return min(self.l1_mshrs, self.rob_entries / instructions_per_miss)


class CoreModel:
    """Mutable timing state of one hardware thread.

    Typical use from the execution engines::

        core = CoreModel(spec)
        core.issue_compute(n_uops)
        core.issue_load(latency, is_miss=latency > hit_threshold)
        ...
        cycles = core.drain()
    """

    #: A load served within this many cycles is treated as pipelined (hit).
    #: Covers L1 (5 cycles) and L2 (14 cycles) hits — an OoO core hides
    #: both.  Known divergence: because L1-polluting prefetches are
    #: backstopped by a free L2 hit, Fig 10b's degradation at large
    #: prefetch distances does not reproduce until the look-ahead falls
    #: off the batch boundary (see EXPERIMENTS.md).
    HIT_PIPELINE_THRESHOLD = 16.0

    def __init__(self, spec: CoreSpec) -> None:
        self.spec = spec
        self.now = 0.0
        self.instr_count = 0
        self.loads = 0
        self.misses = 0
        self.window_stall_cycles = 0.0
        self.mshr_stall_cycles = 0.0
        self.prefetches = 0
        self.merged_loads = 0
        # (issue instruction index, completion time, owns_mshr) of in-flight
        # demand loads, oldest-issue first.  All entries occupy the load
        # queue (bounding demand concurrency); only ``owns_mshr`` entries
        # hold a fill buffer — merged loads (demand hits on an in-flight
        # prefetch) share the prefetch's buffer.
        self._inflight: Deque[Tuple[int, float, bool]] = deque()
        self._queued_count = 0  # load-queue occupancy (all kinds)
        self._mshr_demand = 0  # fill buffers owned by demand loads
        # Completion times of in-flight prefetch fetches (share the MSHRs).
        self._inflight_prefetch: Deque[float] = deque()
        # Earliest completion in each deque (inf when empty).  Retirement
        # only has work to do once ``now`` passes one of these, which turns
        # the per-issue retirement probe into a float compare instead of a
        # deque scan.
        self._min_inflight = _INF
        self._min_prefetch = _INF

    # -- issue events -------------------------------------------------------

    def issue_compute(self, n_uops: int) -> None:
        """Issue ``n_uops`` non-memory micro-ops (cost: issue bandwidth)."""
        if n_uops < 0:
            raise ConfigError("uop count must be non-negative")
        self.instr_count += n_uops
        self.now += n_uops / self.spec.issue_width

    def issue_load(self, latency: float, is_miss: bool = True) -> float:
        """Issue one load with service latency ``latency`` cycles.

        Returns the stall charged to this load (0 when it overlapped fully).
        Hits (``is_miss=False`` or short latency) are pipelined and cost
        only an issue slot.
        """
        self.instr_count += 1
        self.now += 1.0 / self.spec.issue_width
        self.loads += 1
        self._retire_completed()
        if not is_miss and latency <= self.HIT_PIPELINE_THRESHOLD:
            return 0.0
        self.misses += 1
        stall = 0.0
        stall += self._enforce_window()
        stall += self._enforce_load_queue()
        # Fill-buffer limit: demand + prefetch misses share the MSHR file.
        stall += self._enforce_mshr_capacity()
        completion = self.now + latency
        self._inflight.append((self.instr_count, completion, True))
        if completion < self._min_inflight:
            self._min_inflight = completion
        self._queued_count += 1
        self._mshr_demand += 1
        return stall

    def issue_demand_chunk(
        self, latencies: np.ndarray, pre_uops: np.ndarray
    ) -> None:
        """Replay many (compute, demand load) event pairs in bulk.

        Event ``i`` is ``issue_compute(pre_uops[i])`` followed by
        ``issue_load(latencies[i], is_miss=latencies[i] > threshold)``.
        Runs of pipelined hits advance the cursor arithmetically — a hit
        reads no limiter state, and retirement is monotone and idempotent,
        so deferring it to the next miss (which re-checks every limiter) is
        exact.  Misses go through :meth:`issue_load` unchanged.

        Bit-exact equivalence with the scalar calls requires a
        power-of-two ``issue_width``: then every ``uops / width`` term is
        a multiple of ``1 / width``, all partial sums are exactly
        representable, and one fused add equals the scalar add sequence.
        Callers (the engine's bulk path) must not use this method on other
        widths.
        """
        spec = self.spec
        width = spec.issue_width
        if self._inflight_prefetch or any(not e[2] for e in self._inflight):
            # Prefetches (or merged loads) are in flight: limiter decisions
            # would involve them, so replay through the scalar calls.
            thr = self.HIT_PIPELINE_THRESHOLD
            for uops, latency in zip(pre_uops.tolist(), latencies.tolist()):
                self.issue_compute(uops)
                self.issue_load(latency, is_miss=latency > thr)
            return
        miss_idx = np.nonzero(latencies > self.HIT_PIPELINE_THRESHOLD)[0].tolist()
        # Cumulative uops including each load's own issue slot, for O(1)
        # hit-run sums (integer arithmetic — exact).
        csum = np.empty(latencies.size + 1, dtype=np.int64)
        csum[0] = 0
        np.cumsum(pre_uops + 1, out=csum[1:])
        lat_list = latencies.tolist()
        uop_list = pre_uops.tolist()
        rob = spec.rob_entries
        queue_cap = spec.demand_concurrency
        mshr_cap = spec.l1_mshrs
        now = self.now
        icount = self.instr_count
        window_stall = 0.0
        queue_stall = 0.0
        # Every in-flight entry owns its MSHR here (checked above), so the
        # deque flattens to parallel issue-index / completion-time lists.
        idxs = [e[0] for e in self._inflight]
        comps = [e[1] for e in self._inflight]

        # Retirement is lazy: completed entries stay in the lists until a
        # limiter loop pops them.  A completed entry has ``comp <= now``, so
        # its pop records zero stall and changes no observable state — and
        # whenever a loop's head/min is still live it coincides with the
        # eagerly-retired head/min, so every stall recorded below matches
        # the scalar path exactly while each entry is touched once instead
        # of being rescanned on every miss.
        prev = 0
        for m in miss_idx:
            if m > prev:
                total = int(csum[m] - csum[prev])
                icount += total
                now += total / width
            icount += uop_list[m] + 1
            now += uop_list[m] / width
            now += 1.0 / width
            while comps and icount - idxs[0] >= rob:
                wait = comps[0] - now
                if wait > 0.0:
                    now += wait
                    window_stall += wait
                del idxs[0], comps[0]
            while len(comps) >= queue_cap:
                earliest = min(comps)
                if earliest > now:
                    queue_stall += earliest - now
                    now = earliest
                i = comps.index(earliest)
                del comps[i], idxs[i]
            while len(comps) >= mshr_cap:
                earliest = min(comps)
                if earliest > now:
                    queue_stall += earliest - now
                    now = earliest
                i = comps.index(earliest)
                del comps[i], idxs[i]
            idxs.append(icount)
            comps.append(now + lat_list[m])
            prev = m + 1
        n = len(lat_list)
        if prev < n:
            total = int(csum[n] - csum[prev])
            icount += total
            now += total / width
        if any(c <= now for c in comps):
            idxs = [i for i, c in zip(idxs, comps) if c > now]
            comps = [c for c in comps if c > now]
        self.now = now
        self.instr_count = icount
        self.loads += n
        self.misses += len(miss_idx)
        self.window_stall_cycles += window_stall
        self.mshr_stall_cycles += queue_stall
        self._inflight = deque((i, c, True) for i, c in zip(idxs, comps))
        self._queued_count = len(comps)
        self._mshr_demand = len(comps)
        self._min_inflight = min(comps) if comps else _INF

    def issue_merged_load(self, completion: float) -> float:
        """Issue a demand load whose line is already being fetched.

        The fetch was started by an earlier (software or hardware)
        prefetch, so the load merges into the existing MSHR entry: it
        occupies an issue slot, a window entry, and a load-queue slot
        until ``completion`` — but no fill buffer of its own.  This is the
        secondary-miss merge real MSHRs perform.
        """
        self.instr_count += 1
        self.now += 1.0 / self.spec.issue_width
        self.loads += 1
        self.merged_loads += 1
        self._retire_completed()
        if completion <= self.now:
            return 0.0
        stall = self._enforce_window()
        stall += self._enforce_load_queue()
        self._inflight.append((self.instr_count, completion, False))
        if completion < self._min_inflight:
            self._min_inflight = completion
        self._queued_count += 1
        return stall

    def _enforce_load_queue(self) -> float:
        """Wait until a load-queue slot frees; return the stall."""
        stall = 0.0
        while self._queued_count >= self.spec.demand_concurrency:
            earliest = self._min_inflight
            wait = max(0.0, earliest - self.now)
            self.now = max(self.now, earliest)
            stall += wait
            self.mshr_stall_cycles += wait
            self._retire_completed()
        return stall

    def _enforce_window(self) -> float:
        """Full-window stall: issue at most ROB entries past the oldest
        incomplete load."""
        stall = 0.0
        while self._inflight and (
            self.instr_count - self._inflight[0][0] >= self.spec.rob_entries
        ):
            head = self._inflight[0]
            wait = max(0.0, head[1] - self.now)
            self.now += wait
            stall += wait
            self.window_stall_cycles += wait
            self._inflight.popleft()
            self._queued_count -= 1
            if head[2]:
                self._mshr_demand -= 1
            if head[1] <= self._min_inflight:
                self._min_inflight = (
                    min(e[1] for e in self._inflight) if self._inflight else _INF
                )
            self._retire_completed()
        return stall

    def issue_prefetch(self, latency: float) -> float:
        """Issue one software-prefetch instruction with fetch ``latency``.

        Prefetches cost an issue slot and a fill buffer but retire
        immediately — they never occupy the load queue or trigger
        full-window stalls, which is why a prefetch stream sustains more
        outstanding misses than demand loads can.  Returns the stall
        charged while waiting for a fill buffer.
        """
        self.instr_count += 1
        self.now += 1.0 / self.spec.issue_width
        self.prefetches += 1
        self._retire_completed()
        if latency <= self.HIT_PIPELINE_THRESHOLD:
            return 0.0
        stall = self._enforce_mshr_capacity()
        completion = self.now + latency
        self._inflight_prefetch.append(completion)
        if completion < self._min_prefetch:
            self._min_prefetch = completion
        return stall

    def hw_prefetch_slot_free(self) -> bool:
        """Whether a fill buffer is free for a hardware prefetch.

        Real hardware prefetchers *drop* requests when no fill buffer is
        available rather than stalling the pipeline — callers must check
        this before fetching, and skip the prefetch entirely on False.
        """
        self._retire_completed()
        return (
            self._mshr_demand + len(self._inflight_prefetch) < self.spec.l1_mshrs
        )

    def add_hw_prefetch(self, latency: float) -> None:
        """Account an issued hardware prefetch (no issue slot consumed)."""
        if latency <= self.HIT_PIPELINE_THRESHOLD:
            return
        completion = self.now + latency
        self._inflight_prefetch.append(completion)
        if completion < self._min_prefetch:
            self._min_prefetch = completion

    def _enforce_mshr_capacity(self) -> float:
        """Wait until a fill buffer is free; return the stall."""
        stall = 0.0
        while (
            self._mshr_demand + len(self._inflight_prefetch) >= self.spec.l1_mshrs
        ):
            candidates = []
            if self._mshr_demand:
                candidates.append(min(t for _, t, owns in self._inflight if owns))
            if self._inflight_prefetch:
                candidates.append(self._min_prefetch)
            earliest = min(candidates)
            wait = max(0.0, earliest - self.now)
            self.now = max(self.now, earliest)
            stall += wait
            self.mshr_stall_cycles += wait
            self._retire_completed()
        return stall

    def wait_until(self, time: float) -> float:
        """Advance the cursor to ``time`` (models an explicit dependency).

        Returns the stall incurred.  Used by the software-prefetch engine
        when a demand load's data is still in flight from a late prefetch.
        """
        wait = max(0.0, time - self.now)
        self.now += wait
        return wait

    def _retire_completed(self) -> None:
        # Completion times are not FIFO-ordered (latencies vary per access),
        # so retirement scans the whole deque — but only once ``now`` has
        # actually passed the earliest completion, which the tracked minima
        # detect with one compare (the overwhelmingly common case is "no
        # retirement due", so this probe dominates the issue path).
        now = self.now
        if self._min_inflight <= now:
            self._inflight = deque(
                entry for entry in self._inflight if entry[1] > now
            )
            self._queued_count = len(self._inflight)
            self._mshr_demand = sum(1 for e in self._inflight if e[2])
            self._min_inflight = (
                min(e[1] for e in self._inflight) if self._inflight else _INF
            )
        if self._min_prefetch <= now:
            self._inflight_prefetch = deque(
                t for t in self._inflight_prefetch if t > now
            )
            self._min_prefetch = (
                min(self._inflight_prefetch) if self._inflight_prefetch else _INF
            )

    # -- finishing and reporting ---------------------------------------------

    def drain(self) -> float:
        """Wait for all in-flight misses; return total elapsed cycles."""
        if self._inflight:
            last = max(t for _, t, _q in self._inflight)
            self.now = max(self.now, last)
            self._inflight.clear()
            self._queued_count = 0
            self._mshr_demand = 0
        # In-flight prefetches need not complete for the program to finish.
        self._inflight_prefetch.clear()
        self._min_inflight = _INF
        self._min_prefetch = _INF
        return self.now

    @property
    def stall_cycles(self) -> float:
        """Cycles lost to full-window plus MSHR-full stalls."""
        return self.window_stall_cycles + self.mshr_stall_cycles

    @property
    def stall_fraction(self) -> float:
        """Fraction of elapsed cycles spent stalled (0 when nothing ran)."""
        return self.stall_cycles / self.now if self.now > 0 else 0.0

    @property
    def ipc(self) -> float:
        """Achieved instructions per cycle."""
        return self.instr_count / self.now if self.now > 0 else 0.0

    @property
    def utilization(self) -> float:
        """Issue-slot utilization in [0, 1] (IPC / issue width)."""
        return min(1.0, self.ipc / self.spec.issue_width)

    def publish_metrics(self, registry, **labels: str) -> None:
        """Accumulate this core's counters into an obs metrics registry.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry`; the
        engines call this once per run (the model is created fresh per
        run, so cumulative counters are per-run deltas already).
        """
        registry.counter("core.instructions", **labels).inc(self.instr_count)
        registry.counter("core.loads", **labels).inc(self.loads)
        registry.counter("core.misses", **labels).inc(self.misses)
        registry.counter("core.merged_loads", **labels).inc(self.merged_loads)
        registry.counter("core.prefetches", **labels).inc(self.prefetches)
        registry.counter("core.window_stall_cycles", **labels).inc(
            self.window_stall_cycles
        )
        registry.counter("core.mshr_stall_cycles", **labels).inc(
            self.mshr_stall_cycles
        )

    def reset(self) -> None:
        """Return to time zero, dropping all state."""
        self.now = 0.0
        self.instr_count = 0
        self.loads = 0
        self.misses = 0
        self.window_stall_cycles = 0.0
        self.mshr_stall_cycles = 0.0
        self.prefetches = 0
        self.merged_loads = 0
        self._inflight.clear()
        self._queued_count = 0
        self._mshr_demand = 0
        self._inflight_prefetch.clear()
        self._min_inflight = _INF
        self._min_prefetch = _INF
