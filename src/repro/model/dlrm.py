"""The full DLRM module: Fig 2 end to end.

Composes the four stages functionally on numpy.  Construction from a
:class:`~repro.model.configs.ModelConfig` materializes real weights, so the
model must be built from a *scaled* config when table footprints would
otherwise be tens of GB; the timing engines only need the config, not the
weights.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import SimConfig
from ..errors import ConfigError
from ..trace.dataset import TableBatch
from .configs import ModelConfig
from .embedding import EmbeddingTable, embedding_bag
from .interaction import dot_interaction, interaction_output_dim
from .layers import MLP

__all__ = ["DLRM"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class DLRM:
    """A runnable DLRM instance."""

    def __init__(self, config: ModelConfig, rng: Optional[np.random.Generator] = None):
        self.config = config
        rng = rng or np.random.default_rng(0)
        self.bottom_mlp = MLP(config.dense_features, config.bottom_mlp, rng=rng)
        self.tables: List[EmbeddingTable] = [
            EmbeddingTable(config.rows, config.embedding_dim, rng=rng)
            for _ in range(config.num_tables)
        ]
        top_in = interaction_output_dim(config.num_tables, config.embedding_dim)
        self.top_mlp = MLP(top_in, config.top_mlp, rng=rng, final_relu=False)

    @classmethod
    def from_config(
        cls,
        config: ModelConfig,
        sim: Optional[SimConfig] = None,
        scale: Optional[float] = None,
    ) -> "DLRM":
        """Build a model, scaled for simulation.

        ``scale`` overrides ``sim.scale``; weights are seeded from the
        :class:`SimConfig` so runs are reproducible.
        """
        sim = sim or SimConfig()
        effective_scale = scale if scale is not None else sim.scale
        # keep_rows=False: weights are materialized, so rows must shrink too.
        scaled = config.scaled(effective_scale, keep_rows=False)
        return cls(scaled, rng=sim.rng(f"model:{scaled.name}"))

    # -- stages ------------------------------------------------------------

    def run_bottom_mlp(self, dense: np.ndarray) -> np.ndarray:
        """Stage 1: dense features through the bottom MLP."""
        return self.bottom_mlp(dense)

    def run_embedding(self, table_batches: Sequence[TableBatch]) -> List[np.ndarray]:
        """Stage 2: pooled lookups for every table."""
        if len(table_batches) != self.config.num_tables:
            raise ConfigError(
                f"got {len(table_batches)} table batches, model has "
                f"{self.config.num_tables} tables"
            )
        return [
            embedding_bag(table, tb.indices, tb.offsets)
            for table, tb in zip(self.tables, table_batches)
        ]

    def run_interaction(
        self, bottom_out: np.ndarray, embedding_outs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """Stage 3: pairwise dot interaction."""
        return dot_interaction(bottom_out, embedding_outs)

    def run_top_mlp(self, interacted: np.ndarray) -> np.ndarray:
        """Stage 4: top MLP to a CTR probability."""
        logits = self.top_mlp(interacted)
        return _sigmoid(logits).reshape(-1)

    # -- end to end ----------------------------------------------------------

    def forward(
        self, dense: np.ndarray, table_batches: Sequence[TableBatch]
    ) -> np.ndarray:
        """Full inference for one batch; returns CTR probabilities."""
        if dense.ndim != 2 or dense.shape[1] != self.config.dense_features:
            raise ConfigError(
                f"dense input must be (batch, {self.config.dense_features}), "
                f"got {dense.shape}"
            )
        batch = dense.shape[0]
        for tb in table_batches:
            if tb.batch_size != batch:
                raise ConfigError(
                    "dense batch and embedding trace batch sizes disagree"
                )
        bottom_out = self.run_bottom_mlp(dense)
        embedding_outs = self.run_embedding(table_batches)
        interacted = self.run_interaction(bottom_out, embedding_outs)
        return self.run_top_mlp(interacted)

    __call__ = forward

    def random_dense_batch(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Convenience: a random dense-feature batch of the right width."""
        rng = rng or np.random.default_rng(0)
        return rng.normal(0, 1, size=(batch_size, self.config.dense_features)).astype(
            np.float32
        )
