"""The dot-product feature-interaction stage (Fig 2's third stage).

DLRM's interaction concatenates the bottom-MLP output with every pooled
embedding vector, forms all pairwise dot products, and concatenates the
unique (lower-triangle) products back onto the bottom-MLP output.  This is
the standard ``dot`` interaction of Naumov et al.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigError

__all__ = ["dot_interaction", "interaction_output_dim", "interaction_flops"]


def interaction_output_dim(num_embeddings: int, dim: int) -> int:
    """Width of the interaction output fed to the top MLP.

    ``dim`` (the pass-through bottom-MLP output) plus the
    ``C(num_embeddings + 1, 2)`` unique pairwise dot products among the
    ``num_embeddings`` pooled vectors and the bottom output.
    """
    if num_embeddings < 0 or dim <= 0:
        raise ConfigError("invalid interaction shape")
    vectors = num_embeddings + 1
    return dim + vectors * (vectors - 1) // 2


def interaction_flops(batch_size: int, num_embeddings: int, dim: int) -> int:
    """Flops of the batched pairwise-dot computation."""
    vectors = num_embeddings + 1
    return 2 * batch_size * vectors * vectors * dim


def dot_interaction(
    bottom_out: np.ndarray, embedding_outs: Sequence[np.ndarray]
) -> np.ndarray:
    """Compute the interaction for a batch.

    Parameters
    ----------
    bottom_out:
        ``(batch, dim)`` bottom-MLP output.
    embedding_outs:
        One ``(batch, dim)`` pooled vector per table.

    Returns ``(batch, interaction_output_dim)`` float32.
    """
    if bottom_out.ndim != 2:
        raise ConfigError("bottom output must be (batch, dim)")
    batch, dim = bottom_out.shape
    for emb in embedding_outs:
        if emb.shape != (batch, dim):
            raise ConfigError(
                f"embedding output shape {emb.shape} != bottom shape {bottom_out.shape}"
            )
    # (batch, vectors, dim)
    stacked = np.stack([bottom_out, *embedding_outs], axis=1).astype(np.float32)
    # (batch, vectors, vectors) Gram matrices.
    gram = np.einsum("bvd,bwd->bvw", stacked, stacked)
    vectors = stacked.shape[1]
    li, lj = np.tril_indices(vectors, k=-1)
    pairs = gram[:, li, lj]
    return np.concatenate([bottom_out.astype(np.float32), pairs], axis=1)
