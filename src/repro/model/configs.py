"""The paper's model zoo (Table 2) and scaling for simulation.

Four models: three embedding-heavy RMC2 variants and one mixed RMC1 model.
Column-for-column from Table 2::

    name    type    emb%  size(GB)  rows  dim  tables  lookups  bottom-MLP          top-MLP
    rm2_1   small   98    28.6      1M    128  60      120      256-128-128         128-64-1
    rm2_2   medium  96    57.2      1M    128  120     150      1024-512-128-128    384-192-1
    rm2_3   large   95    81.1      1M    128  170     180      2048-1024-256-128   512-256-1
    rm1     -       65    3.8       500K  64   32      80       2048-2048-256-64    768-384-1

``ModelConfig.scaled`` shrinks rows / tables / lookups for trace-driven
simulation while keeping the MLP stacks (timed analytically) at paper size,
so end-to-end stage *ratios* can be re-projected to paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from ..errors import ConfigError, UnknownModelError
from ..units import FLOAT32_BYTES

__all__ = [
    "EXTENDED_MODEL_NAMES",
    "MODEL_NAMES",
    "ModelConfig",
    "get_model",
    "list_models",
]

#: Dense-feature input width fed to the bottom MLP (not listed in Table 2;
#: chosen to match the first bottom layer's scale, as in DeepRecSys configs).
DEFAULT_DENSE_FEATURES = 256


@dataclass(frozen=True)
class ModelConfig:
    """Architecture parameters of one DLRM variant."""

    name: str
    category: str  # "RMC1" or "RMC2"
    rows: int
    embedding_dim: int
    num_tables: int
    lookups_per_sample: int
    bottom_mlp: Tuple[int, ...]
    top_mlp: Tuple[int, ...]
    dense_features: int = DEFAULT_DENSE_FEATURES
    #: Reference embedding share of execution time from Table 2 (percent).
    reference_emb_pct: float = 0.0
    #: SLA latency target from Table 1 (milliseconds).
    sla_ms: float = 100.0
    #: Bytes per embedding element.  The paper uses fp32 (4); quantized
    #: deployments use fp16 (2) or int8 (1) rows — see :meth:`quantized`.
    dtype_bytes: int = FLOAT32_BYTES

    def __post_init__(self) -> None:
        if min(self.rows, self.embedding_dim, self.num_tables) <= 0:
            raise ConfigError("embedding shape must be positive")
        if self.lookups_per_sample <= 0:
            raise ConfigError("lookups_per_sample must be positive")
        if not self.bottom_mlp or not self.top_mlp:
            raise ConfigError("MLP stacks must be non-empty")
        if self.bottom_mlp[-1] != self.embedding_dim:
            raise ConfigError(
                "bottom MLP must end at embedding_dim so interaction shapes match"
            )
        if self.top_mlp[-1] != 1:
            raise ConfigError("top MLP must end in a single logit")
        if self.dtype_bytes not in (1, 2, 4):
            raise ConfigError(
                f"dtype_bytes must be 1 (int8), 2 (fp16) or 4 (fp32), "
                f"got {self.dtype_bytes}"
            )

    # -- derived sizes (Table 2's computed columns) ---------------------------

    @property
    def table_bytes(self) -> int:
        """Per-table capacity (the 488.3 MB / 122.0 MB column)."""
        return self.rows * self.embedding_dim * self.dtype_bytes

    @property
    def embedding_bytes(self) -> int:
        """Total embedding footprint (the Emb. Size column)."""
        return self.table_bytes * self.num_tables

    @property
    def embedding_gib(self) -> float:
        """Embedding footprint in GiB (Table 2 reports GiB as 'GB')."""
        return self.embedding_bytes / 1024**3

    @property
    def lookups_per_batch(self) -> int:
        """Pooled lookups per (batch-size 1) sample across all tables."""
        return self.num_tables * self.lookups_per_sample

    def lookups_for_batch(self, batch_size: int) -> int:
        """Pooled lookups an inference batch performs across all tables."""
        return self.num_tables * self.lookups_per_sample * batch_size

    @property
    def is_embedding_heavy(self) -> bool:
        """RMC2 models are embedding-dominated; RMC1 is mixed."""
        return self.category == "RMC2"

    # -- scaling ---------------------------------------------------------------

    def scaled(self, scale: float, keep_rows: bool = True) -> "ModelConfig":
        """A shrunken copy for tractable simulation.

        Tables and lookups shrink with a soft (square-root) factor so the
        inter-table and intra-sample reuse structure survives; MLPs and
        embedding_dim are untouched.  By default **rows stay at paper
        scale** — the timing engines only consume integer indices, and
        keeping 1M-row tables keeps each hotness group's working set
        faithful relative to real cache capacities.  Pass
        ``keep_rows=False`` when table weights must actually be
        materialized (running the numeric DLRM).  ``scale = 1.0`` returns
        ``self``.
        """
        if not 0.0 < scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        soft = scale**0.5
        return replace(
            self,
            name=f"{self.name}@{scale:g}",
            rows=self.rows if keep_rows else max(2048, int(self.rows * scale)),
            num_tables=max(2, int(round(self.num_tables * soft))),
            lookups_per_sample=max(4, int(round(self.lookups_per_sample * soft))),
        )

    @property
    def base_name(self) -> str:
        """Name with any ``@scale`` suffix stripped."""
        return self.name.split("@", 1)[0]

    def quantized(self, dtype_bytes: int) -> "ModelConfig":
        """A copy with compressed embedding rows (fp16/int8 deployment).

        Quantization shrinks each row's cache-line footprint — a dim-128
        row drops from 8 lines (fp32) to 4 (fp16) or 2 (int8) — directly
        reducing the memory traffic the paper's bottleneck is made of.
        """
        if dtype_bytes == self.dtype_bytes:
            return self
        suffix = {1: "int8", 2: "fp16", 4: "fp32"}.get(dtype_bytes, str(dtype_bytes))
        return replace(
            self, name=f"{self.name}-{suffix}", dtype_bytes=dtype_bytes
        )

    def address_map(self):
        """The physical table layout for this config's dtype."""
        from ..trace.stream import AddressMap

        return AddressMap(
            [self.rows] * self.num_tables,
            self.embedding_dim,
            dtype_bytes=self.dtype_bytes,
        )

    def paper_scale_ratio(self) -> float:
        """Lookup-count ratio of the paper-scale model to this config.

        Embedding-stage cost is linear in pooled lookups, so measured
        embedding cycles on a scaled config multiply by this ratio to
        project paper-scale stage times (keeping dense-stage times
        comparable).  Returns 1.0 for unscaled configs or names not in the
        zoo (custom models).
        """
        if self.base_name == self.name:
            return 1.0
        base = _ZOO.get(self.base_name)
        if base is None:
            return 1.0
        return base.lookups_per_batch / self.lookups_per_batch


_ZOO: Dict[str, ModelConfig] = {
    "rm2_1": ModelConfig(
        name="rm2_1",
        category="RMC2",
        rows=1_000_000,
        embedding_dim=128,
        num_tables=60,
        lookups_per_sample=120,
        bottom_mlp=(256, 128, 128),
        top_mlp=(128, 64, 1),
        reference_emb_pct=98.0,
        sla_ms=400.0,
    ),
    "rm2_2": ModelConfig(
        name="rm2_2",
        category="RMC2",
        rows=1_000_000,
        embedding_dim=128,
        num_tables=120,
        lookups_per_sample=150,
        bottom_mlp=(1024, 512, 128, 128),
        top_mlp=(384, 192, 1),
        reference_emb_pct=96.0,
        sla_ms=400.0,
    ),
    "rm2_3": ModelConfig(
        name="rm2_3",
        category="RMC2",
        rows=1_000_000,
        embedding_dim=128,
        num_tables=170,
        lookups_per_sample=180,
        bottom_mlp=(2048, 1024, 256, 128),
        top_mlp=(512, 256, 1),
        reference_emb_pct=95.0,
        sla_ms=400.0,
    ),
    "rm1": ModelConfig(
        name="rm1",
        category="RMC1",
        rows=500_000,
        embedding_dim=64,
        num_tables=32,
        lookups_per_sample=80,
        bottom_mlp=(2048, 2048, 256, 64),
        top_mlp=(768, 384, 1),
        reference_emb_pct=65.0,
        sla_ms=100.0,
    ),
    # Extension: an RMC3-class model (Table 1: MLP ≈ 80%, medium size,
    # 100 ms SLA).  The paper's evaluation skips RMC3; this config follows
    # the DeepRecSys RMC3 shape scaled with the same growth rules the
    # paper applies to RMC1/RMC2.  Not part of Table 2 (MODEL_NAMES); see
    # EXTENDED_MODEL_NAMES.
    "rm3": ModelConfig(
        name="rm3",
        category="RMC3",
        rows=250_000,
        embedding_dim=32,
        num_tables=10,
        lookups_per_sample=20,
        bottom_mlp=(2048, 4096, 1024, 32),
        top_mlp=(4096, 4096, 1024, 1),
        reference_emb_pct=20.0,
        sla_ms=100.0,
    ),
}

#: Model names in Table 2 order.
MODEL_NAMES: Tuple[str, ...] = ("rm2_1", "rm2_2", "rm2_3", "rm1")

#: Table 2 models plus the RMC3 extension.
EXTENDED_MODEL_NAMES: Tuple[str, ...] = MODEL_NAMES + ("rm3",)


def get_model(name: str) -> ModelConfig:
    """Fetch a model config by name (case-insensitive)."""
    try:
        return _ZOO[name.lower()]
    except KeyError:
        raise UnknownModelError(
            f"unknown model {name!r}; available: {sorted(_ZOO)}"
        ) from None


def list_models() -> Dict[str, ModelConfig]:
    """A copy of the zoo keyed by name."""
    return dict(_ZOO)
