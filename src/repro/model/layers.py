"""Dense layers: Linear, ReLU, and MLP stacks.

Implemented directly on numpy.  Besides ``forward``, every layer reports
its flop count and weight footprint — the quantities the roofline timing
model (:mod:`repro.engine.mlp_exec`) consumes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..units import FLOAT32_BYTES

__all__ = ["Linear", "relu", "MLP"]


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectifier."""
    return np.maximum(x, 0.0)


class Linear:
    """Fully connected layer ``y = x @ W + b`` with fp32 weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ConfigError("layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        # He initialization, sensible for the ReLU stacks DLRM uses.
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features)).astype(
            np.float32
        )
        self.bias = np.zeros(out_features, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the layer to a ``(batch, in_features)`` input."""
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigError(
                f"expected input (*, {self.in_features}), got {x.shape}"
            )
        return x.astype(np.float32) @ self.weight + self.bias

    __call__ = forward

    def flops(self, batch_size: int) -> int:
        """Multiply-accumulate flops for one forward pass."""
        return 2 * batch_size * self.in_features * self.out_features

    @property
    def weight_bytes(self) -> int:
        """Footprint of weights plus bias."""
        return (self.weight.size + self.bias.size) * FLOAT32_BYTES


class MLP:
    """A ReLU MLP defined by layer widths, e.g. ``(256, 128, 128)``.

    ``widths`` are the *output* sizes of successive Linear layers starting
    from ``in_features`` — the notation of the paper's Table 2
    (``Bottom-MLP: 256-128-128``).  ReLU follows every layer except,
    optionally, the last (the top MLP ends in a 1-wide sigmoid handled by
    the caller).
    """

    def __init__(
        self,
        in_features: int,
        widths: Sequence[int],
        rng: Optional[np.random.Generator] = None,
        final_relu: bool = True,
    ) -> None:
        if not widths:
            raise ConfigError("an MLP needs at least one layer")
        self.in_features = in_features
        self.widths = tuple(widths)
        self.final_relu = final_relu
        rng = rng or np.random.default_rng(0)
        self.layers: List[Linear] = []
        previous = in_features
        for width in widths:
            self.layers.append(Linear(previous, width, rng=rng))
            previous = width

    @property
    def out_features(self) -> int:
        """Width of the final layer."""
        return self.widths[-1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply all layers with interleaved ReLUs."""
        for i, layer in enumerate(self.layers):
            x = layer(x)
            is_last = i == len(self.layers) - 1
            if not is_last or self.final_relu:
                x = relu(x)
        return x

    __call__ = forward

    def flops(self, batch_size: int) -> int:
        """Total flops for one batch forward pass."""
        return sum(layer.flops(batch_size) for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        """Total weight footprint — the "few MBs" of Section 4.4."""
        return sum(layer.weight_bytes for layer in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arch = "-".join(str(w) for w in (self.in_features,) + self.widths)
        return f"MLP({arch})"
