"""Embedding tables and the ``embedding_bag`` operator.

This is Algorithm 2 of the paper reimplemented functionally: for each
sample, the offsets array bounds a slice of the indices array, each index
gathers one embedding row, and the rows are sum-pooled into the sample's
output vector (the three levels of indirection in Fig 3).

The numerical path here is what examples and tests exercise; the *timing*
path lives in :mod:`repro.engine.kernels`, which expands the same loop into
cache-line accesses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError, TraceError
from ..trace.dataset import TableBatch
from ..units import FLOAT32_BYTES

__all__ = ["EmbeddingTable", "embedding_bag"]


class EmbeddingTable:
    """One embedding table with materialized fp32 weights."""

    def __init__(
        self,
        rows: int,
        dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rows <= 0 or dim <= 0:
            raise ConfigError("table shape must be positive")
        self.rows = rows
        self.dim = dim
        rng = rng or np.random.default_rng(0)
        bound = 1.0 / np.sqrt(dim)
        self.weight = rng.uniform(-bound, bound, size=(rows, dim)).astype(np.float32)

    def lookup(self, indices: np.ndarray) -> np.ndarray:
        """Gather rows (no pooling)."""
        if indices.size and (indices.min() < 0 or indices.max() >= self.rows):
            raise TraceError("embedding index out of range")
        return self.weight[indices]

    @property
    def nbytes(self) -> int:
        """Table footprint in bytes."""
        return self.rows * self.dim * FLOAT32_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmbeddingTable(rows={self.rows}, dim={self.dim})"


def embedding_bag(
    table: EmbeddingTable,
    indices: np.ndarray,
    offsets: np.ndarray,
    mode: str = "sum",
) -> np.ndarray:
    """Pooled embedding lookup, semantics of ``torch.nn.EmbeddingBag``.

    Parameters
    ----------
    table:
        The embedding table to gather from.
    indices:
        Flat row ids for the whole batch.
    offsets:
        ``batch_size + 1`` boundaries; sample ``k`` pools
        ``indices[offsets[k]:offsets[k+1]]``.
    mode:
        ``"sum"`` (the DLRM default) or ``"mean"``.

    Returns a ``(batch_size, dim)`` float32 array.  A sample with zero
    lookups pools to the zero vector, matching PyTorch.
    """
    if mode not in ("sum", "mean"):
        raise ConfigError(f"unsupported pooling mode {mode!r}")
    tb = TableBatch(offsets=np.asarray(offsets), indices=np.asarray(indices))
    if tb.indices.size and tb.indices.max() >= table.rows:
        raise TraceError("embedding index out of range for table")
    batch_size = tb.batch_size
    out = np.zeros((batch_size, table.dim), dtype=np.float32)
    gathered = table.weight[tb.indices] if tb.indices.size else None
    for k in range(batch_size):
        start, end = tb.offsets[k], tb.offsets[k + 1]
        if end == start:
            continue
        assert gathered is not None
        pooled = gathered[start:end].sum(axis=0)
        if mode == "mean":
            pooled = pooled / (end - start)
        out[k] = pooled
    return out
