"""From-scratch numpy DLRM.

The four stages of Fig 2 — bottom MLP, embedding lookup, feature
interaction, top MLP — implemented functionally so the execution engines
can both *run* them (numerical outputs) and *time* them (flop / byte
accounting).  :mod:`repro.model.configs` carries the paper's Table 2 model
zoo (rm1, rm2_1..rm2_3) with a ``scaled`` view for tractable simulation.
"""

from .configs import (
    EXTENDED_MODEL_NAMES,
    MODEL_NAMES,
    ModelConfig,
    get_model,
    list_models,
)
from .dlrm import DLRM
from .embedding import EmbeddingTable, embedding_bag
from .interaction import dot_interaction, interaction_output_dim
from .layers import MLP, Linear, relu

__all__ = [
    "DLRM",
    "EXTENDED_MODEL_NAMES",
    "EmbeddingTable",
    "Linear",
    "MLP",
    "MODEL_NAMES",
    "ModelConfig",
    "dot_interaction",
    "embedding_bag",
    "get_model",
    "interaction_output_dim",
    "list_models",
    "relu",
]
